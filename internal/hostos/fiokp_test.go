package hostos

// End-to-end FIOKP tests: the enclave-side FastPath Module handles from
// internal/xsk and internal/iouring against this package's kernel sides,
// over genuinely shared untrusted memory.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"rakis/internal/iouring"
	"rakis/internal/mem"
	"rakis/internal/netstack"
	"rakis/internal/ring"
	"rakis/internal/vtime"
	"rakis/internal/xsk"
)

// attachXSK sets up one XSK on the server's queue 0 with a redirect-all
// XDP program and returns the FM-side socket.
func attachXSK(t *testing.T, w *testWorld, verdict func([]byte) Verdict) *xsk.Socket {
	t.Helper()
	var clk vtime.Clock
	res, err := w.sproc.XSKSetup(w.server, 0, 64, 2048, 256, &clk)
	if err != nil {
		t.Fatal(err)
	}
	if verdict == nil {
		// Redirect everything except ARP, which the kernel stack must
		// answer for the client's resolution to succeed.
		verdict = func(frame []byte) Verdict {
			if eth, _, err := netstack.ParseEth(frame); err == nil && eth.Type == netstack.EtherTypeARP {
				return VerdictPass
			}
			return VerdictRedirect
		}
	}
	w.server.AttachXDP(verdict)
	ctrs := &vtime.Counters{}
	sock, err := xsk.Attach(xsk.Config{
		Space: w.kern.Space, Setup: res.Setup,
		RingSize: 64, FrameSize: 2048, FrameCount: 256,
		Counters: ctrs, Model: w.kern.Model,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sock
}

func TestXSKReceivePath(t *testing.T) {
	w := newTestWorld(t)
	w.server.Dev.SetRSS(func([]byte, int) int { return 0 }) // everything to queue 0
	sock := attachXSK(t, w, nil)

	var fmClk vtime.Clock
	if n := sock.Refill(&fmClk); n != 64-1 && n != 64 {
		// A ring of size 64 accepts 64 fill entries.
		t.Fatalf("refill = %d", n)
	}

	// The client sends raw UDP toward the server; XDP redirects to the XSK.
	var cclk vtime.Clock
	cfd, _ := w.cproc.Socket(SockUDP, &cclk)
	dst := netstack.Addr{IP: netstack.IP4{10, 0, 0, 3}, Port: 8125}
	// Destination 10.0.0.3 is not the kernel stack's IP: without the XSK
	// the frame would be discarded. ARP for 10.0.0.3 cannot resolve, so
	// use the kernel IP instead and rely on redirect-all.
	dst.IP = netstack.IP4{10, 0, 0, 2}
	payload := []byte("xdp redirect payload")
	if _, err := w.cproc.SendTo(cfd, payload, dst, &cclk); err != nil {
		t.Fatal(err)
	}

	// The FM polls xRX for the layer-2 frame.
	deadline := time.Now().Add(2 * time.Second)
	var frame []byte
	for {
		var ok bool
		frame, ok = sock.Recv(&fmClk)
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frame never reached the XSK")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// It is a full Ethernet frame carrying our UDP payload.
	_, ipPayload, err := netstack.ParseEth(frame)
	if err != nil {
		t.Fatal(err)
	}
	h, l4, err := netstack.ParseIPv4(ipPayload)
	if err != nil || h.Proto != netstack.ProtoUDP {
		t.Fatalf("ip parse: %v proto=%d", err, h.Proto)
	}
	if !bytes.Contains(l4, payload) {
		t.Fatalf("payload missing from %q", l4)
	}
	if fmClk.Now() == 0 {
		t.Fatal("FM clock must advance")
	}
	// The consumed frame returned to the pool.
	if sock.UMem.FreeFrames() == 0 {
		t.Fatal("frame not recycled")
	}
	if !sock.UMem.InvariantHolds() {
		t.Fatal("UMem invariant broken")
	}
}

func TestXSKDropWithoutFill(t *testing.T) {
	w := newTestWorld(t)
	w.server.Dev.SetRSS(func([]byte, int) int { return 0 })
	sock := attachXSK(t, w, nil)
	// No Refill: the kernel has no frames, so packets drop (§4.1 QoS).
	var cclk vtime.Clock
	cfd, _ := w.cproc.Socket(SockUDP, &cclk)
	dst := netstack.Addr{IP: netstack.IP4{10, 0, 0, 2}, Port: 8125}
	for i := 0; i < 5; i++ {
		w.cproc.SendTo(cfd, []byte("lost"), dst, &cclk)
	}
	time.Sleep(20 * time.Millisecond)
	var fmClk vtime.Clock
	if _, ok := sock.Recv(&fmClk); ok {
		t.Fatal("nothing should arrive without fill entries")
	}
	// The kernel flagged need-wakeup on the fill ring.
	if sock.Fill.Flags()&1 == 0 {
		t.Fatal("kernel must set need-wakeup when fill is empty")
	}
	// The wakeup syscall clears it.
	var mmClk vtime.Clock
	if err := w.sproc.XSKRecvfrom(sock.FD(), &mmClk); err != nil {
		t.Fatal(err)
	}
	if sock.Fill.Flags() != 0 {
		t.Fatal("recvfrom wakeup must clear need-wakeup")
	}
}

func TestXSKTransmitPath(t *testing.T) {
	w := newTestWorld(t)
	sock := attachXSK(t, w, nil)

	// Build a raw Ethernet frame from the "enclave" and send it via xTX;
	// the client's kernel UDP socket should receive it.
	var cclk vtime.Clock
	cfd, _ := w.cproc.Socket(SockUDP, &cclk)
	if err := w.cproc.Bind(cfd, 9001, &cclk); err != nil {
		t.Fatal(err)
	}

	payload := []byte("from the enclave via xsk")
	udp := make([]byte, 8+len(payload))
	udp[0], udp[1] = 0x23, 0x28 // src 9000
	udp[2], udp[3] = 0x23, 0x29 // dst 9001
	udp[4], udp[5] = byte(len(udp)>>8), byte(len(udp))
	copy(udp[8:], payload)
	ip := netstack.MarshalIPv4(netstack.IPv4Header{
		TTL: 64, Proto: netstack.ProtoUDP,
		Src: netstack.IP4{10, 0, 0, 3}, Dst: netstack.IP4{10, 0, 0, 1},
	}, udp)
	frame := netstack.MarshalEth(netstack.EthHeader{
		Dst: w.client.Dev.MAC(), Src: w.server.Dev.MAC(), Type: netstack.EtherTypeIPv4,
	}, ip)

	var fmClk vtime.Clock
	if err := sock.Send(frame, &fmClk); err != nil {
		t.Fatal(err)
	}
	if sock.TX.ProducerValue() != 1 {
		t.Fatal("TX producer must advance for the MM to notice")
	}
	// The Monitor Module notices the producer advance and issues sendto.
	var mmClk vtime.Clock
	n, err := w.sproc.XSKSendto(sock.FD(), &mmClk)
	if err != nil || n != 1 {
		t.Fatalf("sendto processed %d, %v", n, err)
	}

	buf := make([]byte, 128)
	rn, _, err := w.cproc.RecvFrom(cfd, buf, &cclk, true)
	if err != nil || !bytes.Equal(buf[:rn], payload) {
		t.Fatalf("client got %q, %v", buf[:rn], err)
	}

	// The completion recycles the frame.
	if reaped := sock.Reap(&fmClk); reaped != 1 {
		t.Fatalf("reaped %d completions, want 1", reaped)
	}
	if sock.UMem.FreeFrames() != int(sock.UMem.FrameCount()) {
		t.Fatal("TX frame not recycled")
	}
}

func TestXSKHostileKernelScribbles(t *testing.T) {
	// A hostile kernel writes garbage over the shared rings; the FM must
	// refuse it all and keep its invariants.
	w := newTestWorld(t)
	sock := attachXSK(t, w, nil)
	var fmClk vtime.Clock
	sock.Refill(&fmClk)

	// Forge xRX descriptors pointing outside UMem and at frames the FM
	// never gave to the fill routine.
	var clk vtime.Clock
	res, _ := w.sproc.XSKSetup(w.server, 1, 64, 2048, 16, &clk) // scratch: unrelated
	_ = res
	// Directly scribble: host role writes into the RX ring of sock.
	rxBase := sock.RX.Base()
	hostBytes, err := w.kern.Space.Bytes(mem.RoleHost, rxBase, 16+64*16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hostBytes {
		hostBytes[i] = 0xFF
	}
	// Producer now claims 0xFFFFFFFF entries: certification rejects it.
	if _, ok := sock.Recv(&fmClk); ok {
		t.Fatal("hostile RX state must yield nothing")
	}
	if !sock.UMem.InvariantHolds() {
		t.Fatal("UMem invariant must survive scribbling")
	}
	if !sock.RX.InvariantHolds() {
		t.Fatal("ring invariant must survive scribbling")
	}
}

func TestIoUringFileIO(t *testing.T) {
	w := newTestWorld(t)
	w.kern.VFS().WriteFile("/data/in", []byte("io_uring file contents"))
	var clk vtime.Clock
	fd, err := w.sproc.Open("/data/in", ORdwr, &clk)
	if err != nil {
		t.Fatal(err)
	}

	setup, err := w.sproc.IoUringSetup(32, &clk)
	if err != nil {
		t.Fatal(err)
	}
	ctrs := &vtime.Counters{}
	fm, err := iouring.Attach(iouring.Config{
		Space: w.kern.Space, Setup: setup, Entries: 32,
		Counters: ctrs, Model: w.kern.Model,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Bounce buffer in untrusted memory, as the FM would allocate.
	bounceAddr, err := w.kern.Space.Alloc(mem.Untrusted, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}

	var fmClk vtime.Clock
	tok, err := fm.Submit(iouring.SQE{
		Op: iouring.OpRead, FD: int32(fd), Off: 0,
		Addr: bounceAddr, Len: 22,
	}, &fmClk)
	if err != nil {
		t.Fatal(err)
	}
	// The MM notices the iSub advance and issues io_uring_enter.
	var mmClk vtime.Clock
	if err := w.sproc.IoUringEnter(setup.FD, &mmClk); err != nil {
		t.Fatal(err)
	}
	res, err := fm.Wait(tok, &fmClk)
	if err != nil || res != 22 {
		t.Fatalf("read res = %d, %v", res, err)
	}
	got, _ := w.kern.Space.Bytes(mem.RoleEnclave, bounceAddr, 22)
	if string(got) != "io_uring file contents" {
		t.Fatalf("bounce buffer = %q", got)
	}
	// The completion's virtual time includes the wake latency.
	if fmClk.Now() < w.kern.Model.IoUringWakeLatency {
		t.Fatalf("FM clock %d must include wake latency", fmClk.Now())
	}

	// Write path.
	copy(got, []byte("REWRITTEN_CONTENT_HERE"))
	tok, err = fm.Submit(iouring.SQE{
		Op: iouring.OpWrite, FD: int32(fd), Off: 0,
		Addr: bounceAddr, Len: 22,
	}, &fmClk)
	if err != nil {
		t.Fatal(err)
	}
	w.sproc.IoUringEnter(setup.FD, &mmClk)
	if res, err := fm.Wait(tok, &fmClk); err != nil || res != 22 {
		t.Fatalf("write res = %d, %v", res, err)
	}
	data, _ := w.kern.VFS().ReadFile("/data/in")
	if string(data) != "REWRITTEN_CONTENT_HERE" {
		t.Fatalf("file = %q", data)
	}
	if fm.Outstanding() != 0 {
		t.Fatal("no requests should remain outstanding")
	}
}

func TestIoUringEnclaveBufferRejected(t *testing.T) {
	// Appendix A attack, inverted: an SQE whose buffer points into
	// enclave memory must never cross the trust boundary. The FM refuses
	// it at Submit; and should one reach the kernel anyway, the simulated
	// SGX protection faults the host's access and the operation fails
	// with EFAULT.
	w := newTestWorld(t)
	w.kern.VFS().WriteFile("/data/secret", []byte("secret"))
	var clk vtime.Clock
	fd, _ := w.sproc.Open("/data/secret", ORdonly, &clk)
	setup, _ := w.sproc.IoUringSetup(8, &clk)
	fm, err := iouring.Attach(iouring.Config{Space: w.kern.Space, Setup: setup, Entries: 8})
	if err != nil {
		t.Fatal(err)
	}
	trustedAddr, _ := w.kern.Space.Alloc(mem.Trusted, 4096, 64)

	// First line of defense: the FM refuses to expose an enclave pointer.
	var fmClk vtime.Clock
	if _, err := fm.Submit(iouring.SQE{
		Op: iouring.OpRead, FD: int32(fd), Addr: trustedAddr, Len: 6,
	}, &fmClk); !errors.Is(err, iouring.ErrBufferPlacement) {
		t.Fatalf("Submit with enclave buffer: err = %v, want ErrBufferPlacement", err)
	}
	if fm.Outstanding() != 0 {
		t.Fatal("refused request must not be outstanding")
	}

	// Second line of defense: bypass the FM and write the hostile SQE
	// straight into iSub through a raw host-side handle, as compromised
	// enclave code linked against a pointer-trusting liburing would. The
	// kernel's own access then hits the SGX protection and EFAULTs.
	rawSub, err := ring.New(ring.Config{
		Space: w.kern.Space, Access: mem.RoleHost, Base: setup.SubBase,
		Size: 8, EntrySize: iouring.SQEBytes, Side: ring.Producer,
	})
	if err != nil {
		t.Fatal(err)
	}
	slot, err := rawSub.SlotBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	iouring.PutSQE(slot, iouring.SQE{
		Op: iouring.OpRead, FD: int32(fd), Addr: trustedAddr, Len: 6, UserData: 42,
	})
	rawSub.Submit(1, 0)
	var mmClk vtime.Clock
	w.sproc.IoUringEnter(setup.FD, &mmClk)

	rawCompl, err := ring.New(ring.Config{
		Space: w.kern.Space, Access: mem.RoleHost, Base: setup.ComplBase,
		Size: 8, EntrySize: iouring.CQEBytes, Side: ring.Consumer,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		avail, _ := rawCompl.Available()
		if avail > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no completion for bypassed SQE")
		}
		time.Sleep(time.Millisecond)
	}
	cslot, err := rawCompl.SlotBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	cqe := iouring.GetCQE(cslot)
	if cqe.UserData != 42 || cqe.Res != -14 { // EFAULT
		t.Fatalf("cqe = %+v, want UserData=42 Res=-14 (EFAULT)", cqe)
	}
}

func TestIoUringHostileCompletions(t *testing.T) {
	// The kernel forges completions: unknown tokens are refused; a
	// plausible-token-but-impossible-result completion yields -EPERM.
	w := newTestWorld(t)
	var clk vtime.Clock
	setup, _ := w.sproc.IoUringSetup(8, &clk)
	fm, err := iouring.Attach(iouring.Config{
		Space: w.kern.Space, Setup: setup, Entries: 8,
		Counters: &vtime.Counters{},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.kern.VFS().WriteFile("/f", bytes.Repeat([]byte("a"), 100))
	ffd, _ := w.sproc.Open("/f", ORdonly, &clk)
	bounce, _ := w.kern.Space.Alloc(mem.Untrusted, 4096, 64)

	// Submit a read of 10 bytes but have a hostile kernel complete it
	// with res=4096 (more than requested) and also inject a foreign CQE.
	tok, _ := fm.Submit(iouring.SQE{Op: iouring.OpRead, FD: int32(ffd), Addr: bounce, Len: 10}, &clk)

	// Hostile kernel: write CQEs directly instead of running the worker.
	uobj, _ := w.kern.lookupFD(setup.FD)
	u := uobj.(*uringKernel)
	u.stop() // silence the real worker
	time.Sleep(10 * time.Millisecond)

	cslot, _ := u.compl.SlotBytes(0)
	iouring.PutCQE(cslot, iouring.CQE{UserData: 9999, Res: 1}) // foreign token
	u.compl.Submit(1, 0)
	cslot, _ = u.compl.SlotBytes(0)
	iouring.PutCQE(cslot, iouring.CQE{UserData: tok, Res: 4096}) // impossible result
	u.compl.Submit(1, 0)

	if _, err := fm.Wait(tok, &clk); !errors.Is(err, iouring.EPERM) {
		t.Fatalf("hostile completion err = %v, want EPERM", err)
	}
}
