package hostos

import (
	"fmt"
	"time"

	"rakis/internal/netstack"
	"rakis/internal/telemetry"
	"rakis/internal/vtime"
)

// Proc is a process's view of the kernel: the syscall layer. Each
// simulated application thread drives syscalls through a Proc with its
// own virtual clock. Proc methods charge the syscall entry cost plus the
// operation's kernel work to the caller's clock — the Native baseline.
// The LibOS layers (internal/libos) add Gramine's costs on top.
type Proc struct {
	kern *Kernel
	ns   *NetNS
	// Free marks an uncosted load-generator process ("running natively
	// in its own network namespace"): syscall entry is not charged.
	Free     bool
	Counters *vtime.Counters
}

// NewProc creates a process bound to a network namespace.
func (k *Kernel) NewProc(ns *NetNS, counters *vtime.Counters) *Proc {
	return &Proc{kern: k, ns: ns, Counters: counters}
}

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.kern }

// NS returns the process's network namespace.
func (p *Proc) NS() *NetNS { return p.ns }

// enter charges one syscall entry.
func (p *Proc) enter(clk *vtime.Clock) {
	if p.Counters != nil {
		p.Counters.Syscalls.Add(1)
	}
	if !p.Free {
		clk.Advance(p.kern.Model.Syscall)
		p.kern.Trace.Emit(telemetry.EvSyscall, clk.Now(), 0, 0)
	}
}

// --- sockets ---------------------------------------------------------------

// udpObj and tcpObj are the kernel socket objects behind descriptors.
type udpObj struct{ sock *netstack.UDPSocket }

type tcpObj struct {
	sock     *netstack.TCPSocket
	listener bool
}

// Socket creates a kernel socket and returns its descriptor.
func (p *Proc) Socket(typ SockType, clk *vtime.Clock) (int, error) {
	p.enter(clk)
	switch typ {
	case SockUDP:
		sock, err := p.ns.Stack.UDPBind(0)
		if err != nil {
			return -1, err
		}
		return p.kern.installFD(&udpObj{sock: sock}), nil
	case SockTCP:
		// TCP sockets materialize at connect/listen time; install a
		// placeholder carrying the namespace.
		return p.kern.installFD(&tcpObj{}), nil
	default:
		return -1, ErrInval
	}
}

// Bind assigns the local port. For UDP this rebinds the ephemeral socket;
// for TCP it records the port used by a later Listen.
type tcpBindInfo struct{ port uint16 }

func (p *Proc) Bind(fd int, port uint16, clk *vtime.Clock) error {
	p.enter(clk)
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return err
	}
	switch o := obj.(type) {
	case *udpObj:
		sock, err := p.ns.Stack.UDPBind(port)
		if err != nil {
			return err
		}
		o.sock.Close()
		o.sock = sock
		return nil
	case *tcpObj:
		if o.sock != nil || o.listener {
			return ErrInval
		}
		p.kern.mu.Lock()
		p.kern.fds[fd] = &tcpPending{port: port}
		p.kern.mu.Unlock()
		return nil
	case *tcpPending:
		o.port = port
		return nil
	default:
		return ErrNotSocket
	}
}

// tcpPending is a TCP socket that has been bound but not yet listened or
// connected.
type tcpPending struct{ port uint16 }

// Listen turns a bound TCP socket into a listener.
func (p *Proc) Listen(fd, backlog int, clk *vtime.Clock) error {
	p.enter(clk)
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return err
	}
	var port uint16
	switch o := obj.(type) {
	case *tcpPending:
		port = o.port
	case *tcpObj:
		if o.sock != nil || o.listener {
			return ErrInval
		}
	default:
		return ErrNotSocket
	}
	l, err := p.ns.Stack.TCPListen(port, backlog)
	if err != nil {
		return err
	}
	p.kern.mu.Lock()
	p.kern.fds[fd] = &tcpObj{sock: l, listener: true}
	p.kern.mu.Unlock()
	return nil
}

// Connect establishes a TCP connection (UDP connect sets the default
// destination).
func (p *Proc) Connect(fd int, addr netstack.Addr, clk *vtime.Clock) error {
	p.enter(clk)
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return err
	}
	switch o := obj.(type) {
	case *udpObj:
		o.sock.Connect(addr)
		return nil
	case *tcpObj:
		if o.sock != nil || o.listener {
			return ErrInval
		}
		c, err := p.ns.Stack.TCPConnect(addr, clk)
		if err != nil {
			return err
		}
		p.kern.mu.Lock()
		p.kern.fds[fd] = &tcpObj{sock: c}
		p.kern.mu.Unlock()
		return nil
	case *tcpPending:
		c, err := p.ns.Stack.TCPConnect(addr, clk)
		if err != nil {
			return err
		}
		p.kern.mu.Lock()
		p.kern.fds[fd] = &tcpObj{sock: c}
		p.kern.mu.Unlock()
		return nil
	default:
		return ErrNotSocket
	}
}

// Accept returns a new descriptor for the next established connection.
func (p *Proc) Accept(fd int, clk *vtime.Clock, block bool) (int, netstack.Addr, error) {
	p.enter(clk)
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return -1, netstack.Addr{}, err
	}
	o, ok := obj.(*tcpObj)
	if !ok || !o.listener {
		return -1, netstack.Addr{}, ErrNotSocket
	}
	c, err := o.sock.Accept(clk, block)
	if err != nil {
		return -1, netstack.Addr{}, err
	}
	return p.kern.installFD(&tcpObj{sock: c}), c.RemoteAddr(), nil
}

// SendTo transmits one datagram.
func (p *Proc) SendTo(fd int, b []byte, addr netstack.Addr, clk *vtime.Clock) (int, error) {
	p.enter(clk)
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	o, ok := obj.(*udpObj)
	if !ok {
		return 0, ErrNotSocket
	}
	if err := o.sock.SendTo(b, addr, clk); err != nil {
		return 0, err
	}
	return len(b), nil
}

// RecvFrom receives one datagram into b.
func (p *Proc) RecvFrom(fd int, b []byte, clk *vtime.Clock, block bool) (int, netstack.Addr, error) {
	p.enter(clk)
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return 0, netstack.Addr{}, err
	}
	o, ok := obj.(*udpObj)
	if !ok {
		return 0, netstack.Addr{}, ErrNotSocket
	}
	d, err := o.sock.RecvFrom(clk, block)
	if err != nil {
		return 0, netstack.Addr{}, err
	}
	n := copy(b, d.Payload)
	clk.Advance(vtime.Bytes(p.kern.Model.UserCopyPerByte, n))
	return n, d.Src, nil
}

// Send writes stream or connected-datagram data.
func (p *Proc) Send(fd int, b []byte, clk *vtime.Clock) (int, error) {
	p.enter(clk)
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	switch o := obj.(type) {
	case *udpObj:
		if err := o.sock.Send(b, clk); err != nil {
			return 0, err
		}
		return len(b), nil
	case *tcpObj:
		if o.sock == nil || o.listener {
			return 0, ErrInval
		}
		return o.sock.Send(b, clk)
	default:
		return 0, ErrNotSocket
	}
}

// Recv reads stream or connected-datagram data.
func (p *Proc) Recv(fd int, b []byte, clk *vtime.Clock, block bool) (int, error) {
	p.enter(clk)
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	switch o := obj.(type) {
	case *udpObj:
		d, err := o.sock.RecvFrom(clk, block)
		if err != nil {
			return 0, err
		}
		n := copy(b, d.Payload)
		clk.Advance(vtime.Bytes(p.kern.Model.UserCopyPerByte, n))
		return n, nil
	case *tcpObj:
		if o.sock == nil || o.listener {
			return 0, ErrInval
		}
		return o.sock.Recv(b, clk, block)
	default:
		return 0, ErrNotSocket
	}
}

// --- files ------------------------------------------------------------------

// Open opens (or with OCreate creates) a file.
func (p *Proc) Open(path string, flags int, clk *vtime.Clock) (int, error) {
	p.enter(clk)
	if !p.Free {
		clk.Advance(p.kern.Model.VfsOp)
	}
	var ino *Inode
	var err error
	if flags&OCreate != 0 {
		ino = p.kern.vfs.Create(path)
	} else {
		ino, err = p.kern.vfs.Lookup(path)
		if err != nil {
			return -1, err
		}
		if flags&OTrunc != 0 {
			ino.Truncate(0)
		}
	}
	return p.kern.installFD(&File{ino: ino, path: path, flags: flags}), nil
}

func (p *Proc) file(fd int) (*File, error) {
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return nil, err
	}
	f, ok := obj.(*File)
	if !ok {
		return nil, ErrNotFile
	}
	return f, nil
}

// Read reads from the file cursor.
func (p *Proc) Read(fd int, b []byte, clk *vtime.Clock) (int, error) {
	p.enter(clk)
	f, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.ino.ReadAt(b, f.off)
	f.off += int64(n)
	if !p.Free {
		clk.Advance(p.kern.Model.VfsOp + vtime.Bytes(p.kern.Model.KernelCopyPerByte, n))
	}
	return n, nil
}

// Write writes at the file cursor.
func (p *Proc) Write(fd int, b []byte, clk *vtime.Clock) (int, error) {
	p.enter(clk)
	f, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.ino.WriteAt(b, f.off)
	f.off += int64(n)
	if !p.Free {
		clk.Advance(p.kern.Model.VfsOp + vtime.Bytes(p.kern.Model.KernelCopyPerByte, n))
	}
	return n, nil
}

// Pread reads at an explicit offset without moving the cursor.
func (p *Proc) Pread(fd int, b []byte, off int64, clk *vtime.Clock) (int, error) {
	p.enter(clk)
	f, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	n := f.ino.ReadAt(b, off)
	if !p.Free {
		clk.Advance(p.kern.Model.VfsOp + vtime.Bytes(p.kern.Model.KernelCopyPerByte, n))
	}
	return n, nil
}

// Pwrite writes at an explicit offset without moving the cursor.
func (p *Proc) Pwrite(fd int, b []byte, off int64, clk *vtime.Clock) (int, error) {
	p.enter(clk)
	f, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	n := f.ino.WriteAt(b, off)
	if !p.Free {
		clk.Advance(p.kern.Model.VfsOp + vtime.Bytes(p.kern.Model.KernelCopyPerByte, n))
	}
	return n, nil
}

// Lseek repositions the cursor (whence 0=set, 1=cur, 2=end).
func (p *Proc) Lseek(fd int, off int64, whence int, clk *vtime.Clock) (int64, error) {
	p.enter(clk)
	f, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	switch whence {
	case 0:
		f.off = off
	case 1:
		f.off += off
	case 2:
		f.off = f.ino.Size() + off
	default:
		return 0, ErrInval
	}
	if f.off < 0 {
		f.off = 0
	}
	return f.off, nil
}

// Fstat returns the file size.
func (p *Proc) Fstat(fd int, clk *vtime.Clock) (int64, error) {
	p.enter(clk)
	f, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	return f.ino.Size(), nil
}

// Close releases a descriptor of any kind.
func (p *Proc) Close(fd int, clk *vtime.Clock) error {
	p.enter(clk)
	obj, err := p.kern.removeFD(fd)
	if err != nil {
		return err
	}
	switch o := obj.(type) {
	case *udpObj:
		o.sock.Close()
	case *tcpObj:
		if o.sock != nil {
			o.sock.Close(clk)
		}
	case *uringKernel:
		o.stop()
	case *xskKernel:
		o.unbind()
	}
	return nil
}

// --- poll -------------------------------------------------------------------

// Poll event bits.
const (
	PollIn  uint32 = 1 << 0
	PollOut uint32 = 1 << 2
	PollErr uint32 = 1 << 3
	PollHup uint32 = 1 << 4
)

// PollFD is one poll entry; Revents is filled on return.
type PollFD struct {
	FD      int
	Events  uint32
	Revents uint32
}

// readiness computes the revents for one descriptor.
func (p *Proc) readiness(fd int, events uint32) uint32 {
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return PollErr
	}
	var re uint32
	switch o := obj.(type) {
	case *udpObj:
		if events&PollIn != 0 && o.sock.Readable() {
			re |= PollIn
		}
		if events&PollOut != 0 {
			re |= PollOut // UDP is always writable here
		}
	case *tcpObj:
		if o.sock == nil {
			return PollErr
		}
		if events&PollIn != 0 && o.sock.Readable() {
			re |= PollIn
		}
		if events&PollOut != 0 && !o.listener && o.sock.Writable() {
			re |= PollOut
		}
	case *File:
		re |= events & (PollIn | PollOut) // regular files never block
	default:
		return PollErr
	}
	return re
}

// Poll waits until any descriptor is ready or the real-time timeout
// expires (timeout < 0 waits indefinitely). It returns the ready count
// and fills Revents. The virtual cost is one scan of the descriptor set.
func (p *Proc) Poll(fds []PollFD, timeout time.Duration, clk *vtime.Clock) (int, error) {
	p.enter(clk)
	if !p.Free {
		clk.Advance(uint64(len(fds)) * p.kern.Model.PollPerFD)
	}
	var deadline time.Time
	if timeout >= 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		n := 0
		for i := range fds {
			fds[i].Revents = p.readiness(fds[i].FD, fds[i].Events)
			if fds[i].Revents != 0 {
				n++
			}
		}
		if n > 0 {
			return n, nil
		}
		if timeout == 0 {
			return 0, nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return 0, nil
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// Futex models Gramine's observation (§6.1) that some futex waits can be
// handled without a host syscall: the Native path charges a syscall, the
// LibOS layers may not. Here it is simply a cost hook.
func (p *Proc) Futex(clk *vtime.Clock) {
	p.enter(clk)
}

// Fsync is a no-op on the in-memory filesystem but costs a syscall.
func (p *Proc) Fsync(fd int, clk *vtime.Clock) error {
	p.enter(clk)
	_, err := p.file(fd)
	return err
}

// Unlink removes a file.
func (p *Proc) Unlink(path string, clk *vtime.Clock) error {
	p.enter(clk)
	return p.kern.vfs.Unlink(path)
}

// fmtAddr helps error messages elsewhere.
func fmtAddr(a netstack.Addr) string { return fmt.Sprintf("%v", a) }
