package hostos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rakis/internal/chaos"
	"rakis/internal/mem"
	"rakis/internal/ring"
	"rakis/internal/vtime"
	"rakis/internal/xsk"
)

// xskKernel is the kernel side of one XDP socket: the consumer of xFill
// and xTX, the producer of xRX and xCompl. Receive delivery runs in
// softirq context (the XDP redirect path); transmit processing runs when
// the sendto wakeup syscall arrives, honouring XDP_USE_NEED_WAKEUP — in
// RAKIS deployments that syscall comes from the Monitor Module.
type xskKernel struct {
	fd      int
	ns      *NetNS
	queueID int

	fill, rx, tx, compl *ring.Ring
	umemBase            mem.Addr
	frameSize           uint32
	frameCount          uint32

	rxMu sync.Mutex // serializes softirq delivery (one per queue, but be safe)
	txMu sync.Mutex // serializes sendto processing

	// Busy-poll worker: a kernel thread pinned to this socket that
	// drains xTX and keeps the receive path unblocked without any
	// need-wakeup syscalls (SO_BUSY_POLL / napi_busy_loop in spirit).
	// pollClk is allocated with the socket and survives mode toggles so
	// one telemetry probe covers every incarnation of the worker.
	pollMu    sync.Mutex
	pollStop  chan struct{}
	pollDone  chan struct{}
	pollClk   vtime.Clock
	pollFresh atomic.Bool

	// txClk is the driver TX context for this queue. The sendto wakeup
	// is only a doorbell in zero-copy XDP: the syscall cost lands on the
	// calling thread (the Monitor Module), but the per-frame driver work
	// runs in the queue's NAPI TX context — this clock — so N queues
	// drain in parallel instead of serializing every frame on the one
	// MM thread.
	txClk vtime.Clock

	counters *vtime.Counters
}

// XSKSetupResult carries what the in-enclave FM needs to attach.
type XSKSetupResult struct {
	Setup xsk.Setup
}

// XSKSetup performs the untrusted initialization of one XDP socket bound
// to the given interface queue (§4.1: "at least 14 syscalls" collapsed
// into one simulated control-plane call — initialization runs outside
// the enclave either way). It allocates the four rings and the UMem in
// shared untrusted memory and returns their addresses.
func (p *Proc) XSKSetup(ns *NetNS, queueID int, ringSize, frameSize, frameCount uint32, clk *vtime.Clock) (XSKSetupResult, error) {
	// Represent the multi-syscall setup cost.
	for i := 0; i < 14; i++ {
		p.enter(clk)
	}
	k := p.kern
	if queueID < 0 || queueID >= ns.Dev.NumQueues() {
		return XSKSetupResult{}, fmt.Errorf("%w: queue %d", ErrInval, queueID)
	}
	alloc := func(n uint64) (mem.Addr, error) { return k.Space.Alloc(mem.Untrusted, n, 64) }
	fillB, err := alloc(ring.TotalBytes(ringSize, xsk.FillEntryBytes))
	if err != nil {
		return XSKSetupResult{}, err
	}
	rxB, err := alloc(ring.TotalBytes(ringSize, xsk.DescBytes))
	if err != nil {
		return XSKSetupResult{}, err
	}
	txB, err := alloc(ring.TotalBytes(ringSize, xsk.DescBytes))
	if err != nil {
		return XSKSetupResult{}, err
	}
	complB, err := alloc(ring.TotalBytes(ringSize, xsk.FillEntryBytes))
	if err != nil {
		return XSKSetupResult{}, err
	}
	umemB, err := alloc(uint64(frameSize) * uint64(frameCount))
	if err != nil {
		return XSKSetupResult{}, err
	}

	mk := func(base mem.Addr, entry uint32, side ring.Side) (*ring.Ring, error) {
		return ring.New(ring.Config{
			Space: k.Space, Access: mem.RoleHost, Base: base,
			Size: ringSize, EntrySize: entry, Side: side,
		})
	}
	x := &xskKernel{
		ns: ns, queueID: queueID,
		umemBase: umemB, frameSize: frameSize, frameCount: frameCount,
		counters: p.Counters,
	}
	if x.fill, err = mk(fillB, xsk.FillEntryBytes, ring.Consumer); err != nil {
		return XSKSetupResult{}, err
	}
	if x.rx, err = mk(rxB, xsk.DescBytes, ring.Producer); err != nil {
		return XSKSetupResult{}, err
	}
	if x.tx, err = mk(txB, xsk.DescBytes, ring.Consumer); err != nil {
		return XSKSetupResult{}, err
	}
	if x.compl, err = mk(complB, xsk.FillEntryBytes, ring.Producer); err != nil {
		return XSKSetupResult{}, err
	}
	x.fd = k.installFD(x)
	for _, rg := range []chaos.RingRegion{
		{Name: fmt.Sprintf("xsk%d-fill", x.fd), Base: fillB, EntrySize: xsk.FillEntryBytes,
			KernelSide: ring.Consumer, Flags: true},
		{Name: fmt.Sprintf("xsk%d-rx", x.fd), Base: rxB, EntrySize: xsk.DescBytes,
			KernelSide: ring.Producer},
		{Name: fmt.Sprintf("xsk%d-tx", x.fd), Base: txB, EntrySize: xsk.DescBytes,
			KernelSide: ring.Consumer},
		{Name: fmt.Sprintf("xsk%d-compl", x.fd), Base: complB, EntrySize: xsk.FillEntryBytes,
			KernelSide: ring.Producer},
	} {
		rg.Size = ringSize
		k.Chaos.RegisterRing(rg)
	}

	ns.mu.Lock()
	ns.xsks[queueID] = x
	ns.mu.Unlock()

	return XSKSetupResult{Setup: xsk.Setup{
		FD:        x.fd,
		FillBase:  fillB,
		RXBase:    rxB,
		TXBase:    txB,
		ComplBase: complB,
		UMemBase:  umemB,
	}}, nil
}

// unbind detaches the XSK from its queue and retires its busy-poll
// worker.
func (x *xskKernel) unbind() {
	x.setBusyPoll(false)
	x.ns.mu.Lock()
	if x.ns.xsks[x.queueID] == x {
		delete(x.ns.xsks, x.queueID)
	}
	x.ns.mu.Unlock()
}

// umemOK bounds-checks a user-supplied UMem range. The kernel validates
// user descriptors just as Linux does — the kernel is not RAKIS's victim,
// but it protects itself.
func (x *xskKernel) umemOK(off uint64, n uint32) bool {
	total := uint64(x.frameSize) * uint64(x.frameCount)
	return off < total && uint64(n) <= total-off
}

// deliver places one received frame into a fill-ring UMem slot and
// publishes an xRX descriptor. Without fill entries the frame is dropped
// (§4.1 "Quality of service assurance") and need-wakeup is flagged.
func (x *xskKernel) deliver(frame []byte, clk *vtime.Clock) {
	x.rxMu.Lock()
	defer x.rxMu.Unlock()
	m := x.ns.kern.Model
	clk.Advance(m.XskKernelPerFrame)
	avail, _ := x.fill.Available()
	if avail == 0 {
		x.fill.SetFlags(ring.FlagNeedWakeup)
		if x.counters != nil {
			x.counters.PacketsDropped.Add(1)
		}
		return
	}
	rxFree, _ := x.rx.Free()
	if rxFree == 0 {
		if x.counters != nil {
			x.counters.PacketsDropped.Add(1)
		}
		return
	}
	off, err := x.fill.ReadU64(0)
	if err != nil || !x.umemOK(off, uint32(len(frame))) || uint32(len(frame)) > x.frameSize {
		// Hostile or nonsense fill entry: consume and drop.
		x.fill.Release(1)
		if x.counters != nil {
			x.counters.PacketsDropped.Add(1)
		}
		return
	}
	dst, err := x.ns.kern.Space.Bytes(mem.RoleHost, x.umemBase+mem.Addr(off), uint64(len(frame)))
	if err != nil {
		x.fill.Release(1)
		return
	}
	copy(dst, frame)
	clk.Advance(vtime.Bytes(m.KernelCopyPerByte, len(frame)))
	x.fill.Release(1)
	slot, err := x.rx.SlotBytes(0)
	if err != nil {
		return
	}
	xsk.PutDesc(slot, xsk.Desc{Addr: off, Len: uint32(len(frame))})
	x.rx.Submit(1, clk.Now())
}

// processTX consumes xTX, transmits the frames, and produces completions.
// It runs in syscall context — the sendto wakeup from the Monitor Module.
func (x *xskKernel) processTX(clk *vtime.Clock) int {
	x.txMu.Lock()
	defer x.txMu.Unlock()
	// Republish the kernel-owned indices so a scribbled cell heals even
	// when no entries move this pass, and bound the drain at one ring's
	// worth — the tx ring is uncertified on this side, so a hostile
	// producer value must not become an unbounded loop.
	x.tx.Republish()
	x.compl.Republish()
	m := x.ns.kern.Model
	n := 0
	for drained := uint32(0); drained < x.tx.Size(); drained++ {
		avail, _ := x.tx.Available()
		if avail == 0 {
			break
		}
		clk.Sync(x.tx.SlotStamp(0))
		// Freeze the descriptor before the bounds check: umemOK and the
		// copy below must agree on (Addr, Len) even if the producer
		// rewrites the live slot mid-drain.
		snap, err := x.tx.SnapSlot(0)
		if err != nil {
			x.tx.Release(1)
			continue
		}
		d := xsk.SnapDesc(snap)
		if !x.umemOK(d.Addr, d.Len) {
			x.tx.Release(1)
			continue
		}
		src, err := x.ns.kern.Space.Bytes(mem.RoleHost, x.umemBase+mem.Addr(d.Addr), uint64(d.Len))
		if err != nil {
			x.tx.Release(1)
			continue
		}
		clk.Advance(m.XskKernelPerFrame + vtime.Bytes(m.KernelCopyPerByte, int(d.Len)))
		frame := make([]byte, d.Len)
		copy(frame, src)
		x.ns.Dev.Transmit(frame, clk.Now())
		x.tx.Release(1)
		// Completion: hand the frame back.
		free, _ := x.compl.Free()
		if free > 0 {
			x.compl.WriteU64(0, d.Addr)
			x.compl.Submit(1, clk.Now())
		}
		n++
	}
	return n
}

// XSKSendto is the sendto(fd) wakeup: it prompts the kernel to drain the
// socket's xTX ring (§4.3).
func (p *Proc) XSKSendto(fd int, clk *vtime.Clock) (int, error) {
	p.enter(clk)
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	x, ok := obj.(*xskKernel)
	if !ok {
		return 0, ErrNotSocket
	}
	if p.Counters != nil {
		p.Counters.Wakeups.Add(1)
	}
	// Fault sites (b): the wakeup may be lost, deferred, or repeated.
	inj := p.kern.Chaos
	if inj.WakeDrop() {
		return 0, nil
	}
	if d := inj.WakeDelay(); d > 0 {
		at := clk.Now()
		go func() {
			time.Sleep(d)
			var dclk vtime.Clock
			dclk.Sync(at)
			x.processTX(&dclk)
		}()
		return 0, nil
	}
	// The doorbell is paid above (p.enter, on the caller's clock); the
	// frame drain runs in the queue's driver context. The driver cannot
	// start before the doorbell rang, so its clock first catches up to
	// the caller.
	x.txMu.Lock()
	x.txClk.Sync(clk.Now())
	x.txMu.Unlock()
	n := x.processTX(&x.txClk)
	if inj.WakeDup() {
		n += x.processTX(&x.txClk)
	}
	return n, nil
}

// XSKTxClock exposes the queue's driver TX context clock so telemetry
// can attach a probe — the drain work moved off the MM clock must stay
// visible in the cycle accounting.
func (p *Proc) XSKTxClock(fd int) *vtime.Clock {
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return nil
	}
	x, ok := obj.(*xskKernel)
	if !ok {
		return nil
	}
	return &x.txClk
}

// XSKRecvfrom is the recvfrom(fd) wakeup: it clears the fill ring's
// need-wakeup flag so the receive path resumes consuming fill entries.
func (p *Proc) XSKRecvfrom(fd int, clk *vtime.Clock) error {
	p.enter(clk)
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return err
	}
	x, ok := obj.(*xskKernel)
	if !ok {
		return ErrNotSocket
	}
	if p.Counters != nil {
		p.Counters.Wakeups.Add(1)
	}
	inj := p.kern.Chaos
	if inj.WakeDrop() {
		return nil
	}
	if d := inj.WakeDelay(); d > 0 {
		go func() {
			time.Sleep(d)
			x.resumeRX()
		}()
		return nil
	}
	x.resumeRX()
	if inj.WakeDup() {
		x.resumeRX()
	}
	return nil
}

// resumeRX clears need-wakeup and republishes the kernel-owned receive
// indices (scribble healing for an otherwise idle receive path).
func (x *xskKernel) resumeRX() {
	x.rxMu.Lock()
	x.fill.Republish()
	x.rx.Republish()
	x.rxMu.Unlock()
	x.fill.SetFlags(0)
}

// pollInterval is the real-time pass period of the busy-poll worker —
// same order as the Monitor sweep, but with no syscall per pass.
const pollInterval = 5 * time.Microsecond

// XSKBusyPoll switches the socket's kernel busy-poll worker on or off
// (the SO_PREFER_BUSY_POLL trade: no per-edge wakeup syscalls, one core
// spinning instead). The caller is a host thread — in RAKIS deployments
// the Monitor Module, so a mode switch never costs an enclave exit.
func (p *Proc) XSKBusyPoll(fd int, on bool, clk *vtime.Clock) error {
	p.enter(clk)
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return err
	}
	x, ok := obj.(*xskKernel)
	if !ok {
		return ErrNotSocket
	}
	x.setBusyPoll(on)
	return nil
}

// XSKPollClock exposes the socket's busy-poll worker clock so the
// telemetry layer can attach a probe: the spin burn must show up in the
// cycle accounting, or busy-poll would look free.
func (p *Proc) XSKPollClock(fd int) *vtime.Clock {
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return nil
	}
	x, ok := obj.(*xskKernel)
	if !ok {
		return nil
	}
	return &x.pollClk
}

// setBusyPoll starts or stops the worker, idempotently.
func (x *xskKernel) setBusyPoll(on bool) {
	x.pollMu.Lock()
	defer x.pollMu.Unlock()
	if on == (x.pollStop != nil) {
		return
	}
	if on {
		x.pollFresh.Store(true)
		x.pollStop = make(chan struct{})
		x.pollDone = make(chan struct{})
		go x.pollLoop(x.pollStop, x.pollDone)
	} else {
		close(x.pollStop)
		<-x.pollDone
		x.pollStop, x.pollDone = nil, nil
	}
}

func (x *xskKernel) pollLoop(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		default:
		}
		x.pollPass()
		time.Sleep(pollInterval)
	}
}

// pollPass is one spin of the worker. The gap between the worker's
// clock and the oldest pending TX frame is exactly the time the core
// spent polling empty rings, so it is booked as spin (CompOther) before
// the frame is processed — busy-poll's cost is idle cycles, and the
// accounting must show it.
func (x *xskKernel) pollPass() {
	clk := &x.pollClk
	x.txMu.Lock()
	x.tx.Republish()
	if avail, _ := x.tx.Available(); avail > 0 {
		if x.pollFresh.Swap(false) {
			// First frame after (re)enabling: the worker was not
			// spinning across the gap since its last run, so catching
			// the clock up is wait, not burn.
			clk.Sync(x.tx.SlotStamp(0))
		} else {
			clk.SyncAs(x.tx.SlotStamp(0), vtime.CompOther)
		}
	}
	x.txMu.Unlock()
	x.processTX(clk)
	x.resumeRX()
}
