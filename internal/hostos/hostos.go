// Package hostos simulates the untrusted host: a Linux-like kernel with a
// syscall layer, an in-memory filesystem, kernel network stacks in
// per-interface network namespaces, and the kernel sides of the two
// FIOKPs RAKIS uses — AF_XDP sockets (including the XDP hook on the NIC
// receive path) and io_uring (including its worker thread).
//
// Everything in this package runs with mem.RoleHost: it can read and
// write shared untrusted memory but is physically unable to touch the
// simulated enclave segment, which is how a hostile kernel is modelled in
// tests — it may scribble on rings and UMem but not on trusted state.
//
//rakis:role host
package hostos

import (
	"errors"
	"fmt"
	"sync"

	"rakis/internal/chaos"
	"rakis/internal/mem"
	"rakis/internal/netsim"
	"rakis/internal/netstack"
	"rakis/internal/telemetry"
	"rakis/internal/vtime"
)

// Errno-style errors returned by the syscall layer.
var (
	ErrBadFD     = errors.New("hostos: bad file descriptor")
	ErrNotSocket = errors.New("hostos: not a socket")
	ErrNotFile   = errors.New("hostos: not a file")
	ErrExist     = errors.New("hostos: file exists")
	ErrNoEnt     = errors.New("hostos: no such file")
	ErrInval     = errors.New("hostos: invalid argument")
)

// SockType selects the kernel socket protocol.
type SockType int

const (
	// SockUDP is SOCK_DGRAM over IPv4.
	SockUDP SockType = iota
	// SockTCP is SOCK_STREAM over IPv4.
	SockTCP
)

// Kernel is one simulated host kernel.
type Kernel struct {
	Space *mem.Space
	Model *vtime.Model

	// Chaos, when non-nil, makes this kernel hostile: the fault-injection
	// hooks in the wakeup syscalls, the io_uring worker, and the XSK
	// paths consult it. A nil injector is the well-behaved host.
	Chaos *chaos.Injector

	// Trace, when non-nil, receives one event per syscall entry.
	Trace *telemetry.Buf

	vfs *VFS

	mu     sync.Mutex
	nextFD int
	fds    map[int]any
	nss    map[string]*NetNS
}

// NewKernel boots a kernel over the given shared address space.
func NewKernel(space *mem.Space, model *vtime.Model) *Kernel {
	if model == nil {
		model = vtime.Default()
	}
	return &Kernel{
		Space:  space,
		Model:  model,
		vfs:    NewVFS(),
		nextFD: 3, // 0..2 reserved, as tradition demands
		fds:    make(map[int]any),
		nss:    make(map[string]*NetNS),
	}
}

// VFS returns the kernel's filesystem (for test and workload setup).
func (k *Kernel) VFS() *VFS { return k.vfs }

// installFD registers a kernel object and returns its descriptor.
func (k *Kernel) installFD(obj any) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	fd := k.nextFD
	k.nextFD++
	k.fds[fd] = obj
	return fd
}

func (k *Kernel) lookupFD(fd int) (any, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	obj, ok := k.fds[fd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return obj, nil
}

func (k *Kernel) removeFD(fd int) (any, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	obj, ok := k.fds[fd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	delete(k.fds, fd)
	return obj, nil
}

// NetNS is a network namespace: one interface, one kernel stack, and the
// XSKs bound to the interface's queues.
type NetNS struct {
	Name  string
	Dev   *netsim.Device
	Stack *netstack.Stack

	kern *Kernel

	mu   sync.RWMutex
	xsks map[int]*xskKernel // queue id -> bound XSK
	prog XDPProg
}

// XDP verdicts, mirroring the kernel's XDP_* return codes.
type Verdict int

const (
	// VerdictPass sends the frame up the regular kernel stack.
	VerdictPass Verdict = iota
	// VerdictDrop discards the frame.
	VerdictDrop
	// VerdictRedirect steers the frame to the XSK bound to the queue.
	VerdictRedirect
)

// XDPProg inspects a raw frame and decides its fate, like an eBPF XDP
// program attached to the interface.
type XDPProg func(frame []byte) Verdict

// AddNetNS creates a namespace around dev with a full kernel stack at ip
// using the given cost model (the uncosted load-generator namespace gets
// a cheap derived model). It starts the device's softirq workers.
func (k *Kernel) AddNetNS(name string, dev *netsim.Device, ip netstack.IP4, model *vtime.Model, counters *vtime.Counters) (*NetNS, error) {
	if model == nil {
		model = k.Model
	}
	st, err := netstack.New(netstack.Config{
		Name:       name,
		Dev:        nsLink{dev},
		IP:         ip,
		Model:      model,
		Counters:   counters,
		EnableTCP:  true,
		EnableICMP: true,
	})
	if err != nil {
		return nil, err
	}
	ns := &NetNS{
		Name: name, Dev: dev, Stack: st,
		kern: k,
		xsks: make(map[int]*xskKernel),
	}
	k.mu.Lock()
	k.nss[name] = ns
	k.mu.Unlock()
	dev.Start(ns.handleFrame)
	return ns, nil
}

// NetNS returns a namespace by name.
func (k *Kernel) NetNS(name string) *NetNS {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.nss[name]
}

// Close stops every namespace's stack and device.
func (k *Kernel) Close() {
	k.mu.Lock()
	nss := make([]*NetNS, 0, len(k.nss))
	for _, ns := range k.nss {
		nss = append(nss, ns)
	}
	k.mu.Unlock()
	for _, ns := range nss {
		ns.Stack.Close()
		ns.Dev.Close()
	}
}

// AttachXDP installs the XDP program on the namespace's interface.
func (ns *NetNS) AttachXDP(prog XDPProg) {
	ns.mu.Lock()
	ns.prog = prog
	ns.mu.Unlock()
}

// handleFrame is the softirq entry: XDP hook first, then the kernel stack.
func (ns *NetNS) handleFrame(queueID int, f netsim.Frame, clk *vtime.Clock) {
	ns.mu.RLock()
	prog := ns.prog
	x := ns.xsks[queueID]
	ns.mu.RUnlock()
	if prog != nil {
		clk.Advance(ns.kern.Model.XdpRun)
		switch prog(f.Data) {
		case VerdictDrop:
			return
		case VerdictRedirect:
			// Redirect with no bound XSK drops the frame, like the kernel.
			if x != nil {
				x.deliver(f.Data, clk)
			}
			return
		}
	}
	ns.Stack.Input(f.Data, clk)
}

// nsLink adapts a netsim.Device to netstack.LinkDevice.
type nsLink struct{ dev *netsim.Device }

func (l nsLink) SendFrame(data []byte, clk *vtime.Clock) (uint64, error) {
	return l.dev.Transmit(data, clk.Now())
}
func (l nsLink) MAC() [6]byte { return l.dev.MAC() }
func (l nsLink) MTU() int     { return l.dev.MTU() }
