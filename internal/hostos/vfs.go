package hostos

import (
	"fmt"
	"sort"
	"sync"
)

// VFS is the kernel's in-memory filesystem: a flat namespace of regular
// files, enough for the fstime and MCrypt workloads and the io_uring
// read/write path.
type VFS struct {
	mu    sync.RWMutex
	files map[string]*Inode
}

// NewVFS returns an empty filesystem.
func NewVFS() *VFS {
	return &VFS{files: make(map[string]*Inode)}
}

// Inode is one regular file's contents.
type Inode struct {
	mu   sync.RWMutex
	data []byte
}

// Size returns the file length.
func (ino *Inode) Size() int64 {
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	return int64(len(ino.data))
}

// ReadAt copies file bytes at off into p, returning the count (0 at EOF).
func (ino *Inode) ReadAt(p []byte, off int64) int {
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	if off < 0 || off >= int64(len(ino.data)) {
		return 0
	}
	return copy(p, ino.data[off:])
}

// WriteAt stores p at off, growing the file as needed.
func (ino *Inode) WriteAt(p []byte, off int64) int {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	if off < 0 {
		return 0
	}
	end := off + int64(len(p))
	if end > int64(len(ino.data)) {
		grown := make([]byte, end)
		copy(grown, ino.data)
		ino.data = grown
	}
	copy(ino.data[off:end], p)
	return len(p)
}

// Truncate resizes the file.
func (ino *Inode) Truncate(n int64) {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n <= int64(len(ino.data)) {
		ino.data = ino.data[:n]
		return
	}
	grown := make([]byte, n)
	copy(grown, ino.data)
	ino.data = grown
}

// Lookup returns the inode at path.
func (v *VFS) Lookup(path string) (*Inode, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	ino, ok := v.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoEnt, path)
	}
	return ino, nil
}

// Create makes (or truncates) the file at path.
func (v *VFS) Create(path string) *Inode {
	v.mu.Lock()
	defer v.mu.Unlock()
	ino, ok := v.files[path]
	if ok {
		ino.Truncate(0)
		return ino
	}
	ino = &Inode{}
	v.files[path] = ino
	return ino
}

// Unlink removes the file at path.
func (v *VFS) Unlink(path string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.files[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNoEnt, path)
	}
	delete(v.files, path)
	return nil
}

// List returns all paths in sorted order.
func (v *VFS) List() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	paths := make([]string, 0, len(v.files))
	for p := range v.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// WriteFile creates path with the given contents (test/workload setup).
func (v *VFS) WriteFile(path string, data []byte) {
	ino := v.Create(path)
	ino.WriteAt(data, 0)
}

// ReadFile returns a copy of the file's contents.
func (v *VFS) ReadFile(path string) ([]byte, error) {
	ino, err := v.Lookup(path)
	if err != nil {
		return nil, err
	}
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	out := make([]byte, len(ino.data))
	copy(out, ino.data)
	return out, nil
}

// File is an open file description: an inode plus a cursor.
type File struct {
	ino   *Inode
	path  string
	mu    sync.Mutex
	off   int64
	flags int
}

// Open flags.
const (
	ORdonly = 0
	OWronly = 1
	ORdwr   = 2
	OCreate = 1 << 6
	OTrunc  = 1 << 9
	OAppend = 1 << 10
)
