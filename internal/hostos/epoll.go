package hostos

import (
	"sync"
	"time"

	"rakis/internal/vtime"
)

// epoll: the readiness-notification interface the paper's evaluation had
// to avoid ("As RAKIS does not currently support epoll, we compiled Redis
// to use the select syscall instead", §6.2). The host kernel provides it
// for the baselines; the RAKIS extension in the root package builds its
// enclave-side equivalent over armed io_uring polls.

// Epoll ctl ops.
const (
	EpollCtlAdd = 1
	EpollCtlDel = 2
	EpollCtlMod = 3
)

// EpollEvent is one readiness report.
type EpollEvent struct {
	FD     int
	Events uint32
}

// epollObj is the kernel object behind an epoll descriptor.
type epollObj struct {
	mu       sync.Mutex
	interest map[int]uint32
}

// EpollCreate installs an epoll instance and returns its descriptor.
func (p *Proc) EpollCreate(clk *vtime.Clock) (int, error) {
	p.enter(clk)
	return p.kern.installFD(&epollObj{interest: make(map[int]uint32)}), nil
}

// EpollCtl adds, removes, or modifies interest in fd.
func (p *Proc) EpollCtl(epfd, op, fd int, events uint32, clk *vtime.Clock) error {
	p.enter(clk)
	obj, err := p.kern.lookupFD(epfd)
	if err != nil {
		return err
	}
	ep, ok := obj.(*epollObj)
	if !ok {
		return ErrInval
	}
	if _, err := p.kern.lookupFD(fd); err != nil && op != EpollCtlDel {
		return err
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	switch op {
	case EpollCtlAdd, EpollCtlMod:
		ep.interest[fd] = events
	case EpollCtlDel:
		delete(ep.interest, fd)
	default:
		return ErrInval
	}
	return nil
}

// EpollWait reports ready descriptors, waiting up to timeout (in real
// time; < 0 blocks). Unlike poll, the virtual cost scales with the
// *ready* set plus a constant, which is epoll's entire point.
func (p *Proc) EpollWait(epfd int, events []EpollEvent, timeout time.Duration, clk *vtime.Clock) (int, error) {
	p.enter(clk)
	obj, err := p.kern.lookupFD(epfd)
	if err != nil {
		return 0, err
	}
	ep, ok := obj.(*epollObj)
	if !ok {
		return 0, ErrInval
	}
	var deadline time.Time
	if timeout >= 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		n := 0
		ep.mu.Lock()
		for fd, want := range ep.interest {
			if n == len(events) {
				break
			}
			re := p.readiness(fd, want)
			if re != 0 {
				events[n] = EpollEvent{FD: fd, Events: re}
				n++
			}
		}
		ep.mu.Unlock()
		if n > 0 {
			if !p.Free {
				clk.Advance(uint64(n) * p.kern.Model.PollPerFD)
			}
			return n, nil
		}
		if timeout == 0 {
			return 0, nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return 0, nil
		}
		time.Sleep(50 * time.Microsecond)
	}
}
