package hostos

import (
	"fmt"
	"sync"
	"time"

	"rakis/internal/chaos"
	"rakis/internal/iouring"
	"rakis/internal/mem"
	"rakis/internal/netstack"
	"rakis/internal/ring"
	"rakis/internal/vtime"
)

// uringKernel is the kernel side of one io_uring instance: a worker that
// consumes iSub and produces iCompl. The worker is kicked by the
// io_uring_enter syscall (from the Monitor Module in RAKIS deployments)
// and models the dedicated kernel routine the paper cites [20-22].
type uringKernel struct {
	fd   int
	kern *Kernel
	proc *Proc // namespace context for socket fds

	sub   *ring.Ring // kernel consumes
	compl *ring.Ring // kernel produces

	wake     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	complMu sync.Mutex // serializes CQE production from async op goroutines

	pollMu      sync.Mutex
	pollCancels map[uint64]chan struct{} // armed polls by user data
}

// IoUringSetup performs the untrusted initialization of one io_uring.
func (p *Proc) IoUringSetup(entries uint32, clk *vtime.Clock) (iouring.Setup, error) {
	p.enter(clk)
	k := p.kern
	subB, err := k.Space.Alloc(mem.Untrusted, ring.TotalBytes(entries, iouring.SQEBytes), 64)
	if err != nil {
		return iouring.Setup{}, err
	}
	complB, err := k.Space.Alloc(mem.Untrusted, ring.TotalBytes(entries, iouring.CQEBytes), 64)
	if err != nil {
		return iouring.Setup{}, err
	}
	u := &uringKernel{
		kern: k, proc: p,
		wake:        make(chan struct{}, 1),
		done:        make(chan struct{}),
		pollCancels: make(map[uint64]chan struct{}),
	}
	if u.sub, err = ring.New(ring.Config{
		Space: k.Space, Access: mem.RoleHost, Base: subB,
		Size: entries, EntrySize: iouring.SQEBytes, Side: ring.Consumer,
	}); err != nil {
		return iouring.Setup{}, err
	}
	if u.compl, err = ring.New(ring.Config{
		Space: k.Space, Access: mem.RoleHost, Base: complB,
		Size: entries, EntrySize: iouring.CQEBytes, Side: ring.Producer,
	}); err != nil {
		return iouring.Setup{}, err
	}
	u.fd = k.installFD(u)
	k.Chaos.RegisterRing(chaos.RingRegion{
		Name: fmt.Sprintf("uring%d-sub", u.fd), Base: subB,
		Size: entries, EntrySize: iouring.SQEBytes, KernelSide: ring.Consumer,
	})
	k.Chaos.RegisterRing(chaos.RingRegion{
		Name: fmt.Sprintf("uring%d-compl", u.fd), Base: complB,
		Size: entries, EntrySize: iouring.CQEBytes, KernelSide: ring.Producer,
	})
	go u.worker()
	return iouring.Setup{FD: u.fd, SubBase: subB, ComplBase: complB}, nil
}

// IoUringEnter kicks the worker to process pending submissions (§4.3).
// It does not block: the kernel routine runs asynchronously.
func (p *Proc) IoUringEnter(fd int, clk *vtime.Clock) error {
	p.enter(clk)
	obj, err := p.kern.lookupFD(fd)
	if err != nil {
		return err
	}
	u, ok := obj.(*uringKernel)
	if !ok {
		return ErrInval
	}
	if p.Counters != nil {
		p.Counters.Wakeups.Add(1)
	}
	// Fault sites (b): the host may lose, defer, or repeat the wakeup.
	// The syscall itself still "succeeds" — the enclave cannot observe
	// the loss except as a stalled completion.
	inj := p.kern.Chaos
	if inj.WakeDrop() {
		return nil
	}
	if d := inj.WakeDelay(); d > 0 {
		go func() {
			time.Sleep(d)
			u.kick()
		}()
	} else {
		u.kick()
	}
	if inj.WakeDup() {
		u.kick()
	}
	return nil
}

// kick delivers one (possibly coalesced) wakeup to the worker.
func (u *uringKernel) kick() {
	select {
	case u.wake <- struct{}{}:
	default:
	}
}

func (u *uringKernel) stop() {
	u.stopOnce.Do(func() { close(u.done) })
}

// worker drains the submission ring whenever kicked.
func (u *uringKernel) worker() {
	inj := u.kern.Chaos
	// Periodic scan as a safety net against lost wakeups. Chaos profiles
	// that inject wakeup loss disable it so the loss actually stalls and
	// the enclave's recovery ladder — not this timer — must save the run.
	scan := 5 * time.Millisecond
	if inj.KernelScanDisabled() {
		scan = time.Hour
	}
	for {
		select {
		case <-u.done:
			return
		case <-u.wake:
		case <-time.After(scan):
		}
		if inj.WorkerKill() {
			// Fault site (c): the kernel routine dies. Outstanding and
			// future operations on this ring never complete; the enclave
			// surfaces ErrTimeout, never corruption.
			return
		}
		if d := inj.WorkerStall(); d > 0 {
			time.Sleep(d)
		}
		// Republish both kernel-owned indices: a scribbled cell normally
		// heals on the kernel's next Submit/Release, but an idle kernel
		// makes no stores — republishing on every wakeup lets the
		// enclave's nudge ladder force the heal.
		u.sub.Republish()
		u.complMu.Lock()
		u.compl.Republish()
		u.complMu.Unlock()
		if ud, res, ok := inj.CQEForge(); ok {
			// Fault site (b): a completion the enclave never asked for.
			u.complete(ud, res, 0)
		}
		// Bound the drain at one ring's worth per pass: the submission
		// ring is uncertified on this side, so a hostile producer value
		// must not turn into a multi-billion-iteration loop.
		for drained := uint32(0); drained < u.sub.Size(); drained++ {
			avail, _ := u.sub.Available()
			if avail == 0 {
				break
			}
			// Freeze the SQE before dispatch: the submission ring is
			// uncertified on this side, and an enclave (or scribbler)
			// rewriting the live slot between decode and execution must
			// not split the request into two disagreeing halves.
			snap, err := u.sub.SnapSlot(0)
			if err != nil {
				u.sub.Release(1)
				continue
			}
			sqe := iouring.SnapSQE(snap)
			// The wake latency models the gap between the producer's
			// advance and this routine being scheduled. Each operation
			// runs asynchronously with its own virtual clock — as in
			// real io_uring, a blocking recv or an armed poll never
			// stalls later submissions.
			m := u.kern.Model
			start := u.sub.SlotStamp(0) + m.IoUringWakeLatency
			u.sub.Release(1)
			// Fast-path ops complete inline in the worker; anything that
			// can block (reads, recvs, unready polls) gets a goroutine,
			// as real io_uring punts blocking work to async context.
			var clk vtime.Clock
			clk.SyncAdvance(start, m.IoUringDispatch)
			switch sqe.Op {
			case iouring.OpNop, iouring.OpPollRemove, iouring.OpFsync, iouring.OpWrite:
				u.complete(sqe.UserData, u.hostileRes(sqe, u.execute(sqe, &clk)), clk.Now())
				continue
			case iouring.OpPollAdd:
				if obj, err := u.kern.lookupFD(int(sqe.FD)); err == nil {
					if re := pollReadiness(sqe, obj); re > 0 {
						clk.Advance(m.PollPerFD)
						u.complete(sqe.UserData, u.hostileRes(sqe, re), clk.Now())
						continue
					}
				}
			}
			now := clk.Now()
			go func(sqe iouring.SQE, start uint64) {
				var opClk vtime.Clock
				opClk.Sync(start)
				res := u.execute(sqe, &opClk)
				u.complete(sqe.UserData, u.hostileRes(sqe, res), opClk.Now())
			}(sqe, now)
		}
	}
}

// hostileRes gives chaos a chance to replace a genuine result with a
// hostile errno/short-count value (fault site (d)).
func (u *uringKernel) hostileRes(sqe iouring.SQE, res int32) int32 {
	if v, ok := u.kern.Chaos.CQERes(sqe.Len); ok {
		return v
	}
	return res
}

// complete publishes one CQE.
func (u *uringKernel) complete(userData uint64, res int32, now uint64) {
	u.complMu.Lock()
	defer u.complMu.Unlock()
	dup := 1
	if u.kern.Chaos.CQEDup() {
		// Fault site (b): the same completion posted twice.
		dup = 2
	}
	for i := 0; i < dup; i++ {
		free, _ := u.compl.Free()
		if free == 0 {
			// Completion overflow: drop, as the kernel does when the CQ is
			// full and overflow handling is off.
			return
		}
		cslot, err := u.compl.SlotBytes(0)
		if err != nil {
			return
		}
		iouring.PutCQE(cslot, iouring.CQE{UserData: userData, Res: res})
		u.compl.Submit(1, now)
	}
}

// Errno values surfaced through CQE results.
const (
	errnoEFAULT    = -14
	errnoEINVAL    = -22
	errnoEBADF     = -9
	errnoEPIPE     = -32
	errnoECANCELED = -125
)

// execute performs one submitted operation in the worker's context. The
// user buffer must lie in untrusted memory: a buffer pointing into the
// enclave fails exactly as SGX hardware would make it fail (the
// liburing attack of Appendix A is dead on arrival here).
func (u *uringKernel) execute(sqe iouring.SQE, clk *vtime.Clock) int32 {
	m := u.kern.Model
	var buf []byte
	needBuf := sqe.Op == iouring.OpRead || sqe.Op == iouring.OpWrite ||
		sqe.Op == iouring.OpSend || sqe.Op == iouring.OpRecv
	if needBuf {
		var err error
		buf, err = u.kern.Space.Bytes(mem.RoleHost, sqe.Addr, uint64(sqe.Len))
		if err != nil {
			return errnoEFAULT
		}
	}
	obj, err := u.kern.lookupFD(int(sqe.FD))
	if err != nil && sqe.Op != iouring.OpNop && sqe.Op != iouring.OpPollRemove {
		return errnoEBADF
	}
	switch sqe.Op {
	case iouring.OpNop:
		return 0
	case iouring.OpRead:
		f, ok := obj.(*File)
		if !ok {
			return errnoEBADF
		}
		var n int
		if sqe.Off == ^uint64(0) {
			f.mu.Lock()
			n = f.ino.ReadAt(buf, f.off)
			f.off += int64(n)
			f.mu.Unlock()
		} else {
			n = f.ino.ReadAt(buf, int64(sqe.Off))
		}
		clk.Advance(m.VfsOp + vtime.Bytes(m.KernelCopyPerByte, n))
		return int32(n)
	case iouring.OpWrite:
		f, ok := obj.(*File)
		if !ok {
			return errnoEBADF
		}
		var n int
		if sqe.Off == ^uint64(0) {
			f.mu.Lock()
			n = f.ino.WriteAt(buf, f.off)
			f.off += int64(n)
			f.mu.Unlock()
		} else {
			n = f.ino.WriteAt(buf, int64(sqe.Off))
		}
		clk.Advance(m.VfsOp + vtime.Bytes(m.KernelCopyPerByte, n))
		return int32(n)
	case iouring.OpSend:
		t, ok := obj.(*tcpObj)
		if !ok || t.sock == nil || t.listener {
			return errnoEBADF
		}
		n, err := t.sock.Send(buf, clk)
		if err != nil {
			return errnoEPIPE
		}
		return int32(n)
	case iouring.OpRecv:
		t, ok := obj.(*tcpObj)
		if !ok || t.sock == nil || t.listener {
			return errnoEBADF
		}
		n, err := t.sock.Recv(buf, clk, true)
		if err != nil {
			if err == netstack.ErrReset {
				return errnoEPIPE
			}
			return errnoEPIPE
		}
		return int32(n)
	case iouring.OpPollAdd:
		return u.pollAdd(sqe, obj, clk)
	case iouring.OpPollRemove:
		// Cancel the armed poll whose user data is in Off.
		u.pollMu.Lock()
		ch, ok := u.pollCancels[sqe.Off]
		if ok {
			delete(u.pollCancels, sqe.Off)
		}
		u.pollMu.Unlock()
		if !ok {
			return -2 // ENOENT: already completed or never armed
		}
		close(ch)
		return 0
	case iouring.OpFsync:
		if _, ok := obj.(*File); !ok {
			return errnoEBADF
		}
		clk.Advance(m.VfsOp)
		return 0
	default:
		return errnoEINVAL
	}
}

// pollReadiness computes the immediate revents mask for a descriptor, or
// a negative errno if the descriptor cannot be polled.
func pollReadiness(sqe iouring.SQE, obj any) int32 {
	var re uint32
	switch o := obj.(type) {
	case *udpObj:
		if sqe.OpFlags&uint32(iouring.PollIn) != 0 && o.sock.Readable() {
			re |= uint32(iouring.PollIn)
		}
		if sqe.OpFlags&uint32(iouring.PollOut) != 0 {
			re |= uint32(iouring.PollOut)
		}
	case *tcpObj:
		if o.sock == nil {
			return errnoEBADF
		}
		if sqe.OpFlags&uint32(iouring.PollIn) != 0 && o.sock.Readable() {
			re |= uint32(iouring.PollIn)
		}
		if sqe.OpFlags&uint32(iouring.PollOut) != 0 && !o.listener && o.sock.Writable() {
			re |= uint32(iouring.PollOut)
		}
	case *File:
		re = sqe.OpFlags & (uint32(iouring.PollIn) | uint32(iouring.PollOut))
	default:
		return errnoEBADF
	}
	return int32(re)
}

// pollAdd waits (in its own goroutine, like an armed io_uring poll)
// until the descriptor is ready or the poll is cancelled by a
// poll_remove, returning the revents mask.
func (u *uringKernel) pollAdd(sqe iouring.SQE, obj any, clk *vtime.Clock) int32 {
	cancel := make(chan struct{})
	u.pollMu.Lock()
	u.pollCancels[sqe.UserData] = cancel
	u.pollMu.Unlock()
	defer func() {
		u.pollMu.Lock()
		delete(u.pollCancels, sqe.UserData)
		u.pollMu.Unlock()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		re := pollReadiness(sqe, obj)
		if re != 0 {
			if re > 0 {
				clk.Advance(u.kern.Model.PollPerFD)
			}
			return re
		}
		if time.Now().After(deadline) {
			return 0
		}
		select {
		case <-u.done:
			return errnoEBADF
		case <-time.After(50 * time.Microsecond):
		}
	}
}
