package rakis_test

// End-to-end tests of the full RAKIS runtime against the simulated host:
// unmodified workload code (the sys.Sys surface) exercising UDP over
// XSKs, TCP and files over io_uring, cross-provider poll, and the
// Figure 2 exit-count claim.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"rakis/internal/experiments"
	"rakis/internal/netstack"
	"rakis/internal/sys"
)

func newWorld(t *testing.T, env experiments.Environment, mutate func(*experiments.Options)) *experiments.World {
	t.Helper()
	opt := experiments.Options{Env: env}
	if mutate != nil {
		mutate(&opt)
	}
	w, err := experiments.NewWorld(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

// udpEcho runs one echo round trip from the client through the server
// environment and back.
func udpEcho(t *testing.T, w *experiments.World, port uint16, payload []byte) {
	t.Helper()
	srv, err := w.ServerThread()
	if err != nil {
		t.Fatal(err)
	}
	sfd, err := srv.Socket(sys.UDP)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bind(sfd, port); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 2048)
		n, src, err := srv.RecvFrom(sfd, buf, true)
		if err != nil {
			done <- err
			return
		}
		_, err = srv.SendTo(sfd, buf[:n], src)
		done <- err
	}()

	cli := w.ClientThread()
	cfd, err := cli.Socket(sys.UDP)
	if err != nil {
		t.Fatal(err)
	}
	dst := sys.Addr{IP: w.ServerIP, Port: port}
	if _, err := cli.SendTo(cfd, payload, dst); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	n, src, err := cli.RecvFrom(cfd, buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], payload) {
		t.Fatalf("echo corrupted: %d bytes back, want %d", n, len(payload))
	}
	if src.IP != w.ServerIP {
		t.Fatalf("reply from %v, want %v", src.IP, w.ServerIP)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestUDPEchoAllEnvironments(t *testing.T) {
	payload := []byte("the same unmodified workload bytes on every environment")
	for _, env := range experiments.Environments {
		t.Run(env.String(), func(t *testing.T) {
			w := newWorld(t, env, nil)
			udpEcho(t, w, 7000, payload)
		})
	}
}

func TestRakisUDPDataPathHasNoExits(t *testing.T) {
	w := newWorld(t, experiments.RakisSGX, nil)
	srv, err := w.ServerThread()
	if err != nil {
		t.Fatal(err)
	}
	sfd, _ := srv.Socket(sys.UDP)
	srv.Bind(sfd, 7001)

	cli := w.ClientThread()
	cfd, _ := cli.Socket(sys.UDP)
	dst := sys.Addr{IP: w.ServerIP, Port: 7001}

	// Warm up (ARP, steering) then snapshot.
	cli.SendTo(cfd, []byte("warm"), dst)
	buf := make([]byte, 2048)
	if n, _, err := srv.RecvFrom(sfd, buf, true); err != nil || n != 4 {
		t.Fatalf("warmup recv: %d %v", n, err)
	}
	before := w.Counters.Snapshot()

	const rounds = 500
	go func() {
		for i := 0; i < rounds; i++ {
			cli.SendTo(cfd, buf[:64], dst)
		}
	}()
	got := 0
	for got < rounds {
		n, _, err := srv.RecvFrom(sfd, buf, true)
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 {
			got++
		}
	}
	diff := w.Counters.Snapshot().Sub(before)
	if diff.EnclaveExits != 0 {
		t.Fatalf("UDP data path caused %d enclave exits, want 0 (Figure 2 claim)", diff.EnclaveExits)
	}
	if diff.RingViolations != 0 || diff.UMemViolations != 0 {
		t.Fatalf("benign run reported violations: %+v", diff)
	}
}

func TestGramineSGXPaysExitsPerSyscall(t *testing.T) {
	w := newWorld(t, experiments.GramineSGX, nil)
	srv, _ := w.ServerThread()
	sfd, _ := srv.Socket(sys.UDP)
	srv.Bind(sfd, 7002)
	cli := w.ClientThread()
	cfd, _ := cli.Socket(sys.UDP)
	dst := sys.Addr{IP: w.ServerIP, Port: 7002}

	before := w.Counters.Snapshot()
	const rounds = 100
	buf := make([]byte, 256)
	for i := 0; i < rounds; i++ {
		cli.SendTo(cfd, buf[:32], dst)
		if _, _, err := srv.RecvFrom(sfd, buf, true); err != nil {
			t.Fatal(err)
		}
	}
	diff := w.Counters.Snapshot().Sub(before)
	if diff.EnclaveExits < rounds {
		t.Fatalf("Gramine-SGX exits = %d for %d recvfrom syscalls, want >= %d",
			diff.EnclaveExits, rounds, rounds)
	}
}

func TestRakisTCPThroughIoUring(t *testing.T) {
	for _, env := range []experiments.Environment{experiments.RakisSGX, experiments.RakisDirect} {
		t.Run(env.String(), func(t *testing.T) {
			w := newWorld(t, env, nil)
			srv, err := w.ServerThread()
			if err != nil {
				t.Fatal(err)
			}
			lfd, err := srv.Socket(sys.TCP)
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.Bind(lfd, 6379); err != nil {
				t.Fatal(err)
			}
			if err := srv.Listen(lfd, 8); err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				cfd, _, err := srv.Accept(lfd, true)
				if err != nil {
					done <- err
					return
				}
				buf := make([]byte, 128)
				n, err := srv.Recv(cfd, buf, true)
				if err != nil {
					done <- err
					return
				}
				_, err = srv.Send(cfd, bytes.ToUpper(buf[:n]))
				done <- err
			}()

			// RAKIS TCP sockets live on the *kernel* stack: clients reach
			// them at the kernel IP, not the enclave stack IP.
			cli := w.ClientThread()
			cfd, _ := cli.Socket(sys.TCP)
			if err := cli.Connect(cfd, sys.Addr{IP: experiments.KernelIP, Port: 6379}); err != nil {
				t.Fatal(err)
			}
			if _, err := cli.Send(cfd, []byte("ping over uring")); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 128)
			n, err := cli.Recv(cfd, buf, true)
			if err != nil || string(buf[:n]) != "PING OVER URING" {
				t.Fatalf("reply = %q, %v", buf[:n], err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if w.Counters.IoUringOps.Load() == 0 {
				t.Fatal("TCP data ops must flow through io_uring")
			}
		})
	}
}

func TestRakisFileIOThroughIoUring(t *testing.T) {
	w := newWorld(t, experiments.RakisSGX, nil)
	w.VFS().WriteFile("/data/input", bytes.Repeat([]byte("0123456789"), 1000))
	srv, err := w.ServerThread()
	if err != nil {
		t.Fatal(err)
	}
	fd, err := srv.Open("/data/input", sys.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	before := w.Counters.Snapshot()
	buf := make([]byte, 4096)
	total := 0
	for {
		n, err := srv.Read(fd, buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		total += n
	}
	if total != 10000 {
		t.Fatalf("read %d bytes, want 10000", total)
	}
	diff := w.Counters.Snapshot().Sub(before)
	if diff.EnclaveExits != 0 {
		t.Fatalf("file reads caused %d exits, want 0", diff.EnclaveExits)
	}
	if diff.IoUringOps == 0 {
		t.Fatal("file reads must flow through io_uring")
	}

	// Write a new file through the io_uring path and verify contents.
	out, err := srv.Open("/data/output", sys.OCreate|sys.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("written from inside the enclave without exits")
	if n, err := srv.Write(out, msg); err != nil || n != len(msg) {
		t.Fatalf("write = %d, %v", n, err)
	}
	if err := srv.Fsync(out); err != nil {
		t.Fatal(err)
	}
	data, err := w.VFS().ReadFile("/data/output")
	if err != nil || !bytes.Equal(data, msg) {
		t.Fatalf("file = %q, %v", data, err)
	}
}

func TestRakisCrossProviderPoll(t *testing.T) {
	// The §4.2 scenario: one poll covering a RAKIS UDP socket and a host
	// TCP socket; events on either must surface promptly.
	w := newWorld(t, experiments.RakisSGX, nil)
	srv, err := w.ServerThread()
	if err != nil {
		t.Fatal(err)
	}
	ufd, _ := srv.Socket(sys.UDP)
	srv.Bind(ufd, 7003)
	lfd, _ := srv.Socket(sys.TCP)
	srv.Bind(lfd, 6380)
	srv.Listen(lfd, 4)

	acc := make(chan int, 1)
	go func() {
		cfd, _, err := srv.Clone().Accept(lfd, true)
		if err == nil {
			acc <- cfd
		}
	}()

	cli := w.ClientThread()
	tfd, _ := cli.Socket(sys.TCP)
	if err := cli.Connect(tfd, sys.Addr{IP: experiments.KernelIP, Port: 6380}); err != nil {
		t.Fatal(err)
	}
	sfd := <-acc

	// Case 1: TCP data arrives; poll over {UDP, TCP} flags the TCP fd.
	cli.Send(tfd, []byte("tcp data"))
	fds := []sys.PollFD{
		{FD: ufd, Events: sys.PollIn},
		{FD: sfd, Events: sys.PollIn},
	}
	n, err := srv.Poll(fds, 2*time.Second)
	if err != nil || n != 1 {
		t.Fatalf("poll = %d, %v", n, err)
	}
	if fds[1].Revents&sys.PollIn == 0 || fds[0].Revents != 0 {
		t.Fatalf("revents = %v/%v, want TCP only", fds[0].Revents, fds[1].Revents)
	}
	buf := make([]byte, 64)
	srv.Recv(sfd, buf, true)

	// Case 2: UDP datagram arrives; the UDP source fires.
	ucl, _ := cli.Socket(sys.UDP)
	cli.SendTo(ucl, []byte("udp data"), sys.Addr{IP: w.ServerIP, Port: 7003})
	fds[0].Revents, fds[1].Revents = 0, 0
	n, err = srv.Poll(fds, 2*time.Second)
	if err != nil || n < 1 {
		t.Fatalf("poll2 = %d, %v", n, err)
	}
	if fds[0].Revents&sys.PollIn == 0 {
		t.Fatal("UDP source must be flagged")
	}
	// Case 3: timeout with no events.
	if n, _, err := srv.RecvFrom(ufd, buf, true); err != nil || n == 0 {
		t.Fatal("drain udp")
	}
	fds[0].Revents, fds[1].Revents = 0, 0
	n, err = srv.Poll(fds, 50*time.Millisecond)
	if err != nil || n != 0 {
		t.Fatalf("empty poll = %d, %v; want timeout 0", n, err)
	}
}

func TestRakisNonblockingRecv(t *testing.T) {
	w := newWorld(t, experiments.RakisSGX, nil)
	srv, _ := w.ServerThread()
	ufd, _ := srv.Socket(sys.UDP)
	srv.Bind(ufd, 7004)
	buf := make([]byte, 64)
	if _, _, err := srv.RecvFrom(ufd, buf, false); !errors.Is(err, netstack.ErrWouldBlock) {
		t.Fatalf("empty nonblocking recv = %v, want ErrWouldBlock", err)
	}
}

func TestRakisMultiXSK(t *testing.T) {
	// Four XSKs on four queues, many flows: all datagrams arrive, spread
	// across the FM pumps (the Memcached configuration, §6.1).
	w := newWorld(t, experiments.RakisSGX, func(o *experiments.Options) { o.NumXSKs = 4 })
	srv, _ := w.ServerThread()
	sfd, _ := srv.Socket(sys.UDP)
	srv.Bind(sfd, 7005)

	const flows, per = 16, 25
	go func() {
		for f := 0; f < flows; f++ {
			cli := w.ClientThread()
			cfd, _ := cli.Socket(sys.UDP)
			for i := 0; i < per; i++ {
				cli.SendTo(cfd, []byte("multiflow"), sys.Addr{IP: w.ServerIP, Port: 7005})
			}
		}
	}()
	buf := make([]byte, 256)
	for got := 0; got < flows*per; got++ {
		if _, _, err := srv.RecvFrom(sfd, buf, true); err != nil {
			t.Fatal(err)
		}
	}
	// More than one pump thread did work.
	busy := 0
	for _, p := range w.Rakis().Pumps() {
		if p.Clock().Now() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d of 4 XSK pumps saw traffic; RSS not spreading", busy)
	}
}

func TestRakisVirtualThroughputBeatsGramineSGX(t *testing.T) {
	// A coarse end-to-end sanity check of the headline claim: pushing the
	// same number of datagrams through each environment, the RAKIS-SGX
	// server's virtual receive clock advances far less than
	// Gramine-SGX's (higher throughput).
	run := func(env experiments.Environment) uint64 {
		w := newWorld(t, env, nil)
		srv, err := w.ServerThread()
		if err != nil {
			t.Fatal(err)
		}
		sfd, _ := srv.Socket(sys.UDP)
		srv.Bind(sfd, 7006)
		cli := w.ClientThread()
		cfd, _ := cli.Socket(sys.UDP)
		dst := sys.Addr{IP: w.ServerIP, Port: 7006}
		const rounds = 300
		go func() {
			payload := make([]byte, 1400)
			for i := 0; i < rounds; i++ {
				cli.SendTo(cfd, payload, dst)
			}
		}()
		buf := make([]byte, 2048)
		start := srv.Clock().Now()
		for got := 0; got < rounds; got++ {
			if _, _, err := srv.RecvFrom(sfd, buf, true); err != nil {
				t.Fatal(err)
			}
		}
		return srv.Clock().Now() - start
	}
	rakisCycles := run(experiments.RakisSGX)
	gramineCycles := run(experiments.GramineSGX)
	if gramineCycles < rakisCycles*2 {
		t.Fatalf("Gramine-SGX %d cycles vs RAKIS-SGX %d: expected >2x gap",
			gramineCycles, rakisCycles)
	}
}
