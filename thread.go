package rakis

import (
	"errors"
	"time"

	"rakis/internal/libos"
	"rakis/internal/netstack"
	"rakis/internal/sm"
	"rakis/internal/sys"
	"rakis/internal/telemetry"
	"rakis/internal/vtime"
)

// Thread is one application thread running under RAKIS: the API
// submodule's view of the world (§4.2). UDP socket syscalls are served by
// the in-enclave UDP/IP stack over the XSKs; TCP send/recv, file
// read/write, fsync, and poll are served by the SyncProxy over this
// thread's private io_uring FM; everything else falls back to the
// LibOS's regular (exit-paying, under SGX) path — exactly the residual
// exits visible in Figure 2.
type Thread struct {
	rt        *Runtime
	lt        *libos.Thread
	probe     *telemetry.Probe
	proxy     *sm.SyncProxy
	pollCache *sm.PollCache
}

var _ sys.Sys = (*Thread)(nil)

// ErrWrongSocket reports a stream op on a datagram socket or vice versa.
var ErrWrongSocket = errors.New("rakis: operation does not match socket type")

// NewThread creates an application thread handle: a fallback LibOS
// thread plus a dedicated io_uring FastPath Module (§4.1: one io_uring
// FM per user thread).
func (rt *Runtime) NewThread() (*Thread, error) {
	lt := rt.libosProc.NewThread()
	ufm, err := rt.attachUring(lt.Clock())
	if err != nil {
		return nil, err
	}
	// The LibOS thread already owns this thread's probe; the io_uring FM
	// shares its trace ring so the thread's ring and copy events land in
	// the same per-thread buffer as its spans.
	ufm.SetTrace(lt.Probe().TraceBuf())
	return &Thread{
		rt:        rt,
		lt:        lt,
		probe:     lt.Probe(),
		proxy:     sm.NewSyncProxy(ufm, rt.cfg.Model),
		pollCache: sm.NewPollCache(),
	}, nil
}

// MustThread is NewThread that panics on setup failure (examples).
func (rt *Runtime) MustThread() *Thread {
	t, err := rt.NewThread()
	if err != nil {
		panic(err)
	}
	return t
}

// Clock returns the thread's virtual clock.
func (t *Thread) Clock() *vtime.Clock { return t.lt.Clock() }

// Clone creates a sibling application thread.
func (t *Thread) Clone() sys.Sys {
	nt, err := t.rt.NewThread()
	if err != nil {
		panic(err)
	}
	return nt
}

// Proxy exposes the thread's SyncProxy (for the verification binary).
func (t *Thread) Proxy() *sm.SyncProxy { return t.proxy }

// hook charges the API submodule's syscall interception cost.
func (t *Thread) hook() *vtime.Clock {
	clk := t.lt.Clock()
	clk.Charge(vtime.CompAPI, t.rt.cfg.Model.APIHook)
	return clk
}

// AdviseBatch reports the vector width the self-tuning runtime
// currently advises for SendToN/RecvFromN (the static BatchHint when
// the tuner is off). Batching-aware applications poll it to size their
// gather windows; ignoring it is always correct, just not always fast.
func (t *Thread) AdviseBatch() int { return t.rt.tuning.Batch() }

// recvCopy moves one received payload into the app buffer — the single
// explicit copy of the RX path. A view-backed datagram crosses the trust
// boundary right here (boundary-copy rate, traced, frame released); a
// copy-backed datagram is already trusted and pays only the user-space
// copy rate.
func (t *Thread) recvCopy(d *netstack.Datagram, p []byte, clk *vtime.Clock) int {
	isView := d.IsView()
	n := d.CopyOut(p)
	if isView {
		clk.Charge(vtime.CompCopy, vtime.Bytes(t.rt.cfg.Model.BoundaryCopyPerByte, n))
		t.probe.TraceBuf().Emit(telemetry.EvBoundaryCopy, clk.Now(), uint64(n), 1)
	} else {
		clk.Charge(vtime.CompCopy, vtime.Bytes(t.rt.cfg.Model.UserCopyPerByte, n))
	}
	return n
}

// --- sockets ----------------------------------------------------------------

// Socket creates a socket: UDP sockets live in the enclave stack; TCP
// sockets live there too when EnclaveTCP is on (zero-exit XSK path),
// and are otherwise host sockets created through the LibOS fallback.
func (t *Thread) Socket(typ sys.SockType) (int, error) {
	t.probe.Begin(telemetry.SpanSocket)
	defer t.probe.End()
	if typ == sys.UDP {
		clk := t.hook()
		_ = clk
		sock, err := t.rt.Stack.UDPBind(0)
		if err != nil {
			return -1, err
		}
		return t.rt.registerEntry(&entry{kind: kindUDP, udp: sock}), nil
	}
	if typ == sys.TCP && t.rt.cfg.EnclaveTCP {
		// The enclave TCP endpoint materializes at listen/connect time;
		// until then the entry just carries the bound port.
		t.hook()
		return t.rt.registerEntry(&entry{kind: kindTCP}), nil
	}
	fd, err := t.lt.Socket(typ)
	if err != nil {
		return -1, err
	}
	return t.rt.registerEntry(&entry{kind: kindHost, host: fd}), nil
}

// Bind assigns the local port.
func (t *Thread) Bind(fd int, port uint16) error {
	t.probe.Begin(telemetry.SpanBind)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok {
		return errors.New("rakis: bad fd")
	}
	if e.kind == kindUDP {
		t.hook()
		sock, err := t.rt.Stack.UDPBind(port)
		if err != nil {
			return err
		}
		e.udp.Close()
		e.udp = sock
		return nil
	}
	if e.kind == kindTCP {
		t.hook()
		e.tcpPort = port // consumed by Listen; Connect picks ephemeral
		return nil
	}
	return t.lt.Bind(e.host, port)
}

// Connect connects a socket: in-enclave for UDP, LibOS fallback for TCP
// (connection setup is not one of the five io_uring-served syscalls).
func (t *Thread) Connect(fd int, addr sys.Addr) error {
	t.probe.Begin(telemetry.SpanConnect)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok {
		return errors.New("rakis: bad fd")
	}
	if e.kind == kindUDP {
		t.hook()
		e.udp.Connect(addr)
		return nil
	}
	if e.kind == kindTCP {
		clk := t.hook()
		sock, err := t.rt.Stack.TCPConnect(addr, clk)
		if err != nil {
			return err
		}
		e.tcp = sock
		return nil
	}
	return t.lt.Connect(e.host, addr)
}

// Listen marks a TCP socket as accepting: the enclave stack's
// SYN-cookie listen path under EnclaveTCP, the LibOS fallback otherwise.
func (t *Thread) Listen(fd int, backlog int) error {
	t.probe.Begin(telemetry.SpanListen)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok {
		return ErrWrongSocket
	}
	if e.kind == kindTCP {
		clk := t.hook()
		_ = clk
		l, err := t.rt.Stack.TCPListen(e.tcpPort, backlog)
		if err != nil {
			return err
		}
		e.tcp = l
		return nil
	}
	if e.kind != kindHost {
		return ErrWrongSocket
	}
	return t.lt.Listen(e.host, backlog)
}

// Accept waits for a connection: from the enclave listener's accept
// queue under EnclaveTCP (no exit), else the LibOS fallback.
func (t *Thread) Accept(fd int, block bool) (int, sys.Addr, error) {
	t.probe.Begin(telemetry.SpanAccept)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok {
		return -1, sys.Addr{}, ErrWrongSocket
	}
	if e.kind == kindTCP {
		clk := t.hook()
		if e.tcp == nil {
			return -1, sys.Addr{}, ErrWrongSocket
		}
		c, err := e.tcp.Accept(clk, block)
		if err != nil {
			return -1, sys.Addr{}, err
		}
		return t.rt.registerEntry(&entry{kind: kindTCP, tcp: c}), c.RemoteAddr(), nil
	}
	if e.kind != kindHost {
		return -1, sys.Addr{}, ErrWrongSocket
	}
	nfd, addr, err := t.lt.Accept(e.host, block)
	if err != nil {
		return -1, addr, err
	}
	return t.rt.registerEntry(&entry{kind: kindHost, host: nfd}), addr, nil
}

// SendTo transmits a datagram through the enclave stack and the XSKs —
// no enclave exit.
func (t *Thread) SendTo(fd int, p []byte, addr sys.Addr) (int, error) {
	t.probe.Begin(telemetry.SpanSendTo)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok {
		return 0, errors.New("rakis: bad fd")
	}
	if e.kind != kindUDP {
		return 0, ErrWrongSocket
	}
	clk := t.hook()
	if err := e.udp.SendTo(p, addr, clk); err != nil {
		return 0, err
	}
	return len(p), nil
}

// RecvFrom receives a datagram from the enclave stack — no enclave exit.
func (t *Thread) RecvFrom(fd int, p []byte, block bool) (int, sys.Addr, error) {
	t.probe.Begin(telemetry.SpanRecvFrom)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok {
		return 0, sys.Addr{}, errors.New("rakis: bad fd")
	}
	if e.kind != kindUDP {
		return 0, sys.Addr{}, ErrWrongSocket
	}
	clk := t.hook()
	d, err := e.udp.RecvFrom(clk, block)
	if err != nil {
		return 0, sys.Addr{}, err
	}
	n := t.recvCopy(&d, p, clk)
	return n, d.Src, nil
}

// SendToN transmits up to len(msgs) datagrams in one vectored call
// (sendmmsg): one API hook and one fd lookup cover the batch, and the
// enclave stack pushes all payloads through the batched XSK path — one
// ring lock, one certification pass, at most one MM wakeup, and still no
// enclave exit. Non-UDP descriptors fall back to the LibOS's vectored
// path.
func (t *Thread) SendToN(fd int, msgs []sys.Mmsg) (int, error) {
	t.probe.Begin(telemetry.SpanSendToN)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok {
		return 0, errors.New("rakis: bad fd")
	}
	if e.kind == kindHost {
		return t.lt.SendToN(e.host, msgs)
	}
	if e.kind != kindUDP {
		return 0, ErrWrongSocket
	}
	clk := t.hook()
	if len(msgs) == 0 {
		return 0, nil
	}
	// sendmmsg sends to one destination per call slot; the batched stack
	// path handles one destination per run, so group consecutive
	// same-destination messages.
	sent := 0
	for sent < len(msgs) {
		dst := msgs[sent].Addr
		end := sent + 1
		for end < len(msgs) && msgs[end].Addr == dst {
			end++
		}
		payloads := make([][]byte, 0, end-sent)
		for i := sent; i < end; i++ {
			payloads = append(payloads, msgs[i].Buf)
		}
		n, err := e.udp.SendToN(payloads, dst, clk)
		for i := sent; i < sent+n; i++ {
			msgs[i].N = len(msgs[i].Buf)
		}
		sent += n
		if err != nil {
			if sent == 0 {
				return 0, err
			}
			break
		}
		if n < len(payloads) {
			break
		}
	}
	if c := t.rt.cfg.Counters; c != nil {
		c.BatchCalls.Add(1)
		c.BatchedMsgs.Add(uint64(sent))
	}
	return sent, nil
}

// RecvFromN receives up to len(msgs) datagrams in one vectored call
// (recvmmsg): one API hook and one fd lookup cover the batch. Blocking,
// when requested, applies only to the first message; the rest drain
// whatever the enclave stack has queued. No enclave exit either way.
func (t *Thread) RecvFromN(fd int, msgs []sys.Mmsg, block bool) (int, error) {
	t.probe.Begin(telemetry.SpanRecvFromN)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok {
		return 0, errors.New("rakis: bad fd")
	}
	if e.kind == kindHost {
		return t.lt.RecvFromN(e.host, msgs, block)
	}
	if e.kind != kindUDP {
		return 0, ErrWrongSocket
	}
	clk := t.hook()
	got := 0
	var firstErr error
	for i := range msgs {
		d, err := e.udp.RecvFrom(clk, block && got == 0)
		if err != nil {
			firstErr = err
			break
		}
		n := t.recvCopy(&d, msgs[i].Buf, clk)
		msgs[i].N = n
		msgs[i].Addr = d.Src
		got++
	}
	if c := t.rt.cfg.Counters; c != nil {
		c.BatchCalls.Add(1)
		c.BatchedMsgs.Add(uint64(got))
	}
	if got == 0 {
		return 0, firstErr
	}
	// Receive backlog at drain time: what this call took plus what is
	// still queued. This is the tuner's app-side depth signal — it can
	// exceed the current advised width, which is exactly what lets the
	// width ramp instead of capping its own evidence.
	t.rt.appDepth.Observe(uint64(got + e.udp.QueueLen()))
	t.rt.kickTuner()
	return got, nil
}

// Send writes to a connected socket: enclave stack for UDP, SyncProxy
// (io_uring) for TCP.
func (t *Thread) Send(fd int, p []byte) (int, error) {
	t.probe.Begin(telemetry.SpanSend)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok {
		return 0, errors.New("rakis: bad fd")
	}
	clk := t.hook()
	if e.kind == kindUDP {
		if err := e.udp.Send(p, clk); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	if e.kind == kindTCP {
		if e.tcp == nil {
			return 0, ErrWrongSocket
		}
		return e.tcp.Send(p, clk)
	}
	return t.proxy.Send(e.host, p, clk)
}

// Recv reads from a connected socket: enclave stack for UDP, SyncProxy
// (io_uring) for TCP.
func (t *Thread) Recv(fd int, p []byte, block bool) (int, error) {
	t.probe.Begin(telemetry.SpanRecv)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok {
		return 0, errors.New("rakis: bad fd")
	}
	clk := t.hook()
	if e.kind == kindUDP {
		d, err := e.udp.RecvFrom(clk, block)
		if err != nil {
			return 0, err
		}
		n := t.recvCopy(&d, p, clk)
		return n, nil
	}
	if e.kind == kindTCP {
		if e.tcp == nil {
			return 0, ErrWrongSocket
		}
		return e.tcp.Recv(p, clk, block)
	}
	if !block {
		// The io_uring recv path is blocking; emulate non-blocking via a
		// zero-timeout poll first, as the API submodule does.
		srcs := []sm.PollSource{{HostFD: e.host, Events: sm.PollIn}}
		n, err := sm.Poll(srcs, 0, t.proxy, t.rt.cfg.Model, clk)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, netstack.ErrWouldBlock
		}
	}
	return t.proxy.Recv(e.host, p, clk)
}

// --- files ------------------------------------------------------------------

// Open opens a file through the LibOS fallback (not io_uring-served).
func (t *Thread) Open(path string, flags int) (int, error) {
	t.probe.Begin(telemetry.SpanOpen)
	defer t.probe.End()
	fd, err := t.lt.Open(path, flags)
	if err != nil {
		return -1, err
	}
	return t.rt.registerEntry(&entry{kind: kindHost, host: fd}), nil
}

// Read reads a file through the SyncProxy (io_uring) — no enclave exit.
func (t *Thread) Read(fd int, p []byte) (int, error) {
	t.probe.Begin(telemetry.SpanRead)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok || e.kind != kindHost {
		return 0, ErrWrongSocket
	}
	return t.proxy.Read(e.host, p, t.hook())
}

// Write writes a file through the SyncProxy (io_uring) — no enclave exit.
func (t *Thread) Write(fd int, p []byte) (int, error) {
	t.probe.Begin(telemetry.SpanWrite)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok || e.kind != kindHost {
		return 0, ErrWrongSocket
	}
	return t.proxy.Write(e.host, p, t.hook())
}

// Pread reads at an offset through the SyncProxy.
func (t *Thread) Pread(fd int, p []byte, off int64) (int, error) {
	t.probe.Begin(telemetry.SpanPread)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok || e.kind != kindHost {
		return 0, ErrWrongSocket
	}
	return t.proxy.Pread(e.host, p, off, t.hook())
}

// Pwrite writes at an offset through the SyncProxy.
func (t *Thread) Pwrite(fd int, p []byte, off int64) (int, error) {
	t.probe.Begin(telemetry.SpanPwrite)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok || e.kind != kindHost {
		return 0, ErrWrongSocket
	}
	return t.proxy.Pwrite(e.host, p, off, t.hook())
}

// Lseek repositions the cursor (LibOS-emulated).
func (t *Thread) Lseek(fd int, off int64, whence int) (int64, error) {
	t.probe.Begin(telemetry.SpanLseek)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok || e.kind != kindHost {
		return 0, ErrWrongSocket
	}
	return t.lt.Lseek(e.host, off, whence)
}

// Fstat returns the file size (LibOS fallback).
func (t *Thread) Fstat(fd int) (int64, error) {
	t.probe.Begin(telemetry.SpanFstat)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok || e.kind != kindHost {
		return 0, ErrWrongSocket
	}
	return t.lt.Fstat(e.host)
}

// Fsync flushes through the SyncProxy (io_uring).
func (t *Thread) Fsync(fd int) error {
	t.probe.Begin(telemetry.SpanFsync)
	defer t.probe.End()
	e, ok := t.rt.lookup(fd)
	if !ok || e.kind != kindHost {
		return ErrWrongSocket
	}
	return t.proxy.Fsync(e.host, t.hook())
}

// Poll aggregates readiness across IO providers (§4.2): enclave UDP
// sockets are watched directly, host descriptors through asynchronous
// io_uring polls — no enclave exits.
func (t *Thread) Poll(fds []sys.PollFD, timeout time.Duration) (int, error) {
	t.probe.Begin(telemetry.SpanPoll)
	defer t.probe.End()
	srcs := make([]sm.PollSource, len(fds))
	for i, f := range fds {
		e, ok := t.rt.lookup(f.FD)
		if !ok {
			fds[i].Revents = sys.PollErr
			continue
		}
		srcs[i].Events = f.Events
		switch e.kind {
		case kindUDP:
			srcs[i].UDP = e.udp
		case kindTCP:
			if e.tcp == nil {
				fds[i].Revents = sys.PollErr
				continue
			}
			srcs[i].TCP = e.tcp
		default:
			srcs[i].HostFD = e.host
		}
	}
	clk := t.lt.Clock()
	n, err := sm.PollCached(srcs, timeout, t.proxy, t.rt.cfg.Model, clk, t.pollCache)
	for i := range fds {
		if srcs[i].Revents != 0 {
			fds[i].Revents = srcs[i].Revents
		}
	}
	return n, err
}

// Close releases a descriptor: enclave close for UDP, LibOS fallback for
// host descriptors.
func (t *Thread) Close(fd int) error {
	t.probe.Begin(telemetry.SpanClose)
	defer t.probe.End()
	e, ok := t.rt.remove(fd)
	if !ok {
		return errors.New("rakis: bad fd")
	}
	switch e.kind {
	case kindUDP:
		t.hook()
		t.rt.dropFromEpolls(fd)
		e.udp.Close()
		return nil
	case kindTCP:
		clk := t.hook()
		t.rt.dropFromEpolls(fd)
		if e.tcp != nil {
			return e.tcp.Close(clk)
		}
		return nil
	case kindEpoll:
		t.hook()
		return nil
	}
	t.rt.dropFromEpolls(fd)
	t.pollCache.Drop(e.host, t.proxy, t.lt.Clock())
	return t.lt.Close(e.host)
}

// Futex is handled inside the enclave by the LibOS.
func (t *Thread) Futex() {
	t.probe.Begin(telemetry.SpanFutex)
	defer t.probe.End()
	t.lt.Futex()
}
