package rakis_test

// System-level adversarial tests: the paper's threat model (§3) says the
// host OS is untrusted — it may tamper with any shared data, and the
// worst it may achieve is denial of service, never integrity or
// confidentiality loss inside the enclave. These tests attack the
// *running* system, not isolated modules.

import (
	"bytes"
	"testing"
	"time"

	"rakis/internal/experiments"
	"rakis/internal/mem"
	"rakis/internal/sys"
)

// TestHostileScribbleDuringTraffic runs live UDP traffic while a hostile
// "kernel" thread continuously scribbles random garbage over every shared
// ring's control area. Deliveries may be lost (availability), but every
// datagram that does arrive must be intact, the FM invariants must hold,
// and nothing may crash.
func TestHostileScribbleDuringTraffic(t *testing.T) {
	if raceDetectorEnabled {
		// The attack *is* a data race: the hostile host writes shared
		// untrusted bytes while the FM reads them, exactly as on real
		// SGX hardware. The FM is designed to survive torn values; the
		// Go race detector (correctly) flags the unsynchronized access,
		// so this test runs only without -race.
		t.Skip("adversarial shared-memory scribbling is a deliberate data race")
	}
	w := newWorld(t, experiments.RakisSGX, nil)
	srv, err := w.ServerThread()
	if err != nil {
		t.Fatal(err)
	}
	sfd, _ := srv.Socket(sys.UDP)
	srv.Bind(sfd, 7200)

	// The adversary: host-role writes over the XSK RX descriptor area
	// and control words, repeatedly, while traffic flows.
	stop := make(chan struct{})
	rxBase := w.Rakis().Pumps()[0].Socket().RX.Base()
	go func() {
		seed := uint32(0x9E3779B9)
		for {
			select {
			case <-stop:
				return
			default:
			}
			b, err := w.Space.Bytes(mem.RoleHost, rxBase, 16+32*16)
			if err != nil {
				return
			}
			for i := range b {
				seed = seed*1664525 + 1013904223
				b[i] = byte(seed >> 24)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	cli := w.ClientThread()
	cfd, _ := cli.Socket(sys.UDP)
	payload := []byte("integrity is non-negotiable; availability is the host's to deny")
	dst := sys.Addr{IP: w.ServerIP, Port: 7200}

	received := 0
	buf := make([]byte, 2048)
	const attempts = 300
	for i := 0; i < attempts; i++ {
		cli.SendTo(cfd, payload, dst)
		n, _, err := srv.RecvFrom(sfd, buf, false)
		if err == nil && n > 0 {
			received++
			// Integrity: anything that arrives must be byte-exact.
			if !bytes.Equal(buf[:n], payload) {
				t.Fatalf("attempt %d: corrupted payload surfaced to the application", i)
			}
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Logf("under active scribbling: %d/%d datagrams delivered, violations=%d",
		received, attempts, w.Counters.RingViolations.Load()+w.Counters.UMemViolations.Load())

	// The FM must have refused hostile state rather than crashing; with
	// an active adversary, violations are expected.
	if w.Counters.RingViolations.Load()+w.Counters.UMemViolations.Load() == 0 && received < attempts {
		t.Log("note: adversary writes raced into refused or unread slots")
	}
	// The system must still work once the adversary stops.
	close(stop)
	stopVerified := false
	for i := 0; i < 50 && !stopVerified; i++ {
		cli.SendTo(cfd, []byte("recovery"), dst)
		if n, _, err := srv.RecvFrom(sfd, buf, false); err == nil && string(buf[:n]) == "recovery" {
			stopVerified = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !stopVerified {
		t.Fatal("system did not recover after the attack stopped")
	}

	// Quiesce the pumps, then audit the trusted state.
	for _, p := range w.Rakis().Pumps() {
		p.Close()
	}
	for _, p := range w.Rakis().Pumps() {
		if !p.Socket().UMem.InvariantHolds() {
			t.Fatal("UMem allocator invariant broken under live attack")
		}
		if !p.Socket().RX.InvariantHolds() {
			t.Fatal("ring invariant broken under live attack")
		}
	}
}

// TestMonitorModuleDeathIsAvailabilityOnly kills the Monitor Module:
// wakeup syscalls stop, so *transmission* stalls (availability loss), but
// nothing breaks, and already-delivered receive traffic (push-driven by
// the XDP path) keeps flowing.
func TestMonitorModuleDeathIsAvailabilityOnly(t *testing.T) {
	w := newWorld(t, experiments.RakisSGX, nil)
	srv, err := w.ServerThread()
	if err != nil {
		t.Fatal(err)
	}
	sfd, _ := srv.Socket(sys.UDP)
	srv.Bind(sfd, 7201)
	cli := w.ClientThread()
	cfd, _ := cli.Socket(sys.UDP)
	dst := sys.Addr{IP: w.ServerIP, Port: 7201}

	// Warm up: one full round trip with the MM alive (resolves ARP so
	// the enclave already knows the client's address).
	buf := make([]byte, 2048)
	cli.SendTo(cfd, []byte("warm"), dst)
	n, src, err := srv.RecvFrom(sfd, buf, true)
	if err != nil || n != 4 {
		t.Fatalf("warmup: %d %v", n, err)
	}
	srv.SendTo(sfd, buf[:n], src)
	if _, _, err := cli.RecvFrom(cfd, buf, true); err != nil {
		t.Fatal(err)
	}

	// Kill the MM (a host-controlled thread: the host may stop it).
	w.Rakis().Monitor().Close()

	// Receive path still works: the XDP redirect is push-driven.
	cli.SendTo(cfd, []byte("rx-alive"), dst)
	n, src, err = srv.RecvFrom(sfd, buf, true)
	if err != nil || string(buf[:n]) != "rx-alive" {
		t.Fatalf("receive path died with the MM: %d %v", n, err)
	}

	// Transmit path stalls: the reply sits in xTX with nobody to issue
	// sendto. That is a pure availability loss.
	srv.SendTo(sfd, []byte("stuck"), src)
	if _, _, err := cli.RecvFrom(cfd, buf, false); err == nil {
		// A residual wakeup may already have been in flight; tolerate
		// one delivery but no sustained service.
		srv.SendTo(sfd, []byte("stuck2"), src)
	}
	time.Sleep(50 * time.Millisecond)
	if d, _, err := cli.RecvFrom(cfd, buf, false); err == nil && d > 0 {
		t.Log("note: kernel drained xTX before the MM fully stopped")
	}
	// No violations: a dead MM is not an integrity event.
	if w.Counters.RingViolations.Load() != 0 || w.Counters.UMemViolations.Load() != 0 {
		t.Fatal("MM death must not register as a validation violation")
	}
}

// TestWrongKeyTunnelRejectedBySystem: a host that forwards traffic into
// the enclave tunnel without the PSK achieves nothing.
func TestWrongKeyTunnelRejectedBySystem(t *testing.T) {
	w := newWorld(t, experiments.RakisSGX, nil)
	srv, err := w.ServerThread()
	if err != nil {
		t.Fatal(err)
	}
	sfd, _ := srv.Socket(sys.UDP)
	srv.Bind(sfd, 7202)

	cli := w.ClientThread()
	cfd, _ := cli.Socket(sys.UDP)
	// Garbage "handshakes" and "transport" messages.
	for i := 0; i < 64; i++ {
		msg := bytes.Repeat([]byte{byte(i)}, 1+i*7%900)
		cli.SendTo(cfd, msg, sys.Addr{IP: w.ServerIP, Port: 7202})
	}
	// The datagrams all arrive (they are valid UDP); it is the tunnel
	// layer that must reject them — covered by wgtun tests. Here we
	// assert the transport delivered them uncorrupted and unharmed.
	time.Sleep(50 * time.Millisecond) // let the pump drain the wire
	buf := make([]byte, 2048)
	got := 0
	for {
		n, _, err := srv.RecvFrom(sfd, buf, false)
		if err != nil {
			break
		}
		if n > 0 {
			got++
		}
	}
	if got == 0 {
		t.Fatal("hostile datagrams should still arrive as datagrams")
	}
}
