package rakis_test

// Benchmark harness: one testing.B benchmark per figure of the paper's
// evaluation (§6), plus ablation benches for the design choices DESIGN.md
// calls out. The simulation measures *virtual* time; each benchmark
// reports the figure's metric via b.ReportMetric (virt-Gbps, virt-MB/s,
// virt-kops, virt-ms), so `go test -bench` regenerates the series. Real
// ns/op matters only for the ring microbenchmarks, where the checked
// hot-path cost itself is the quantity of interest.

import (
	"fmt"
	"testing"

	"rakis/internal/experiments"
	"rakis/internal/mem"
	"rakis/internal/ring"
	"rakis/internal/telemetry"
	"rakis/internal/workloads"
)

func benchWorld(b *testing.B, opt experiments.Options) *experiments.World {
	b.Helper()
	w, err := experiments.NewWorld(opt)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)
	return w
}

// BenchmarkFig4aIperf3 regenerates Figure 4(a): UDP throughput per
// environment and packet size.
func BenchmarkFig4aIperf3(b *testing.B) {
	for _, env := range experiments.Environments {
		for _, size := range []int{256, 1460} {
			b.Run(fmt.Sprintf("%s/%dB", env, size), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					w := benchWorld(b, experiments.Options{Env: env})
					res, err := workloads.IperfUDP(w.WorkloadEnv(), workloads.IperfParams{
						PacketSize: size, Count: 800,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res.Gbps
					w.Close()
				}
				b.ReportMetric(last, "virt-Gbps")
			})
		}
	}
}

// BenchmarkFig4bCurl regenerates Figure 4(b): QUIC download duration.
func BenchmarkFig4bCurl(b *testing.B) {
	data := workloads.PrepareMcryptInput(2 << 20)
	for _, env := range experiments.Environments {
		b.Run(env.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				w := benchWorld(b, experiments.Options{Env: env})
				res, err := workloads.Curl(w.WorkloadEnv(), workloads.CurlParams{Path: "/f"},
					func(string) ([]byte, error) { return data, nil })
				if err != nil {
					b.Fatal(err)
				}
				last = res.Seconds * 1e3
				w.Close()
			}
			b.ReportMetric(last, "virt-ms")
		})
	}
}

// BenchmarkFig4cMemcached regenerates Figure 4(c): throughput across
// server thread counts with four XSKs.
func BenchmarkFig4cMemcached(b *testing.B) {
	for _, env := range experiments.Environments {
		for _, threads := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/%dthr", env, threads), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					w := benchWorld(b, experiments.Options{Env: env, NumXSKs: 4, ServerQueues: 8})
					res, err := workloads.Memcached(w.WorkloadEnv(), workloads.MemcachedParams{
						ServerThreads: threads, Ops: 1200,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res.OpsPerSec / 1e3
					w.Close()
				}
				b.ReportMetric(last, "virt-kops")
			})
		}
	}
}

// BenchmarkFig5aFstime regenerates Figure 5(a): write throughput across
// block sizes.
func BenchmarkFig5aFstime(b *testing.B) {
	for _, env := range experiments.Environments {
		for _, block := range []int{1024, 65536} {
			b.Run(fmt.Sprintf("%s/%dB", env, block), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					w := benchWorld(b, experiments.Options{Env: env})
					res, err := workloads.Fstime(w.WorkloadEnv(), workloads.FstimeParams{
						BlockSize: block, TotalBytes: 2 << 20,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res.KBps / 1024
					w.Close()
				}
				b.ReportMetric(last, "virt-MB/s")
			})
		}
	}
}

// BenchmarkFig5bRedis regenerates Figure 5(b): request throughput per
// command.
func BenchmarkFig5bRedis(b *testing.B) {
	for _, env := range experiments.Environments {
		for _, cmd := range []string{"PING", "GET"} {
			b.Run(fmt.Sprintf("%s/%s", env, cmd), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					w := benchWorld(b, experiments.Options{Env: env})
					res, err := workloads.Redis(w.WorkloadEnv(), workloads.RedisParams{
						Command: cmd, Ops: 600, Connections: 20,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res.OpsPerSec / 1e3
					w.Close()
				}
				b.ReportMetric(last, "virt-kops")
			})
		}
	}
}

// BenchmarkFig5cMcrypt regenerates Figure 5(c): encryption duration per
// read block size.
func BenchmarkFig5cMcrypt(b *testing.B) {
	input := workloads.PrepareMcryptInput(4 << 20)
	for _, env := range experiments.Environments {
		for _, block := range []int{16384, 262144} {
			b.Run(fmt.Sprintf("%s/%dKB", env, block>>10), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					w := benchWorld(b, experiments.Options{Env: env})
					w.VFS().WriteFile("/data/mcrypt.in", input)
					res, err := workloads.Mcrypt(w.WorkloadEnv(), workloads.McryptParams{BlockSize: block})
					if err != nil {
						b.Fatal(err)
					}
					last = res.Seconds * 1e3
					w.Close()
				}
				b.ReportMetric(last, "virt-ms")
			})
		}
	}
}

// BenchmarkFig2EnclaveExits regenerates Figure 2: exit counts, read from
// the telemetry registry's exit gauge — the same source of truth as the
// cmd/rakis-trace breakdown.
func BenchmarkFig2EnclaveExits(b *testing.B) {
	for _, env := range []experiments.Environment{experiments.GramineSGX, experiments.RakisSGX} {
		b.Run(env.String(), func(b *testing.B) {
			var exits float64
			for i := 0; i < b.N; i++ {
				sink := telemetry.NewSink()
				w := benchWorld(b, experiments.Options{Env: env, Telemetry: sink})
				if _, err := workloads.IperfUDP(w.WorkloadEnv(), workloads.IperfParams{
					PacketSize: 1460, Count: 800,
				}); err != nil {
					b.Fatal(err)
				}
				v, ok := sink.Reg.Value("vtime.enclave_exits")
				if !ok {
					b.Fatal("exit gauge missing from registry")
				}
				exits = float64(v)
				w.Close()
			}
			b.ReportMetric(exits, "exits")
		})
	}
}

// --- ablations (DESIGN.md) --------------------------------------------------

// BenchmarkAblationRingChecks measures the real hot-path cost of the
// Table 2 certification: certified vs uncertified ring produce+consume.
func BenchmarkAblationRingChecks(b *testing.B) {
	for _, certified := range []bool{true, false} {
		name := "certified"
		if !certified {
			name = "unchecked"
		}
		b.Run(name, func(b *testing.B) {
			sp := mem.NewSpace(1<<12, 1<<16)
			base, _ := sp.Alloc(mem.Untrusted, ring.TotalBytes(2048, 8), 64)
			prod, err := ring.New(ring.Config{
				Space: sp, Access: mem.RoleEnclave, Base: base,
				Size: 2048, EntrySize: 8, Side: ring.Producer, Certified: certified,
			})
			if err != nil {
				b.Fatal(err)
			}
			cons, err := ring.New(ring.Config{
				Space: sp, Access: mem.RoleHost, Base: base,
				Size: 2048, EntrySize: 8, Side: ring.Consumer, Certified: certified,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if free, _ := prod.Free(); free > 0 {
					prod.WriteU64(0, uint64(i))
					prod.Submit(1, 0)
				}
				if avail, _ := cons.Available(); avail > 0 {
					cons.ReadU64(0)
					cons.Release(1)
				}
			}
		})
	}
}

// BenchmarkAblationStackLocking compares the enclave stack's fine-grained
// locking against the original LWIP global lock under a multi-threaded
// UDP workload (§4.2 implementation note).
func BenchmarkAblationStackLocking(b *testing.B) {
	for _, global := range []bool{false, true} {
		name := "sharded"
		if global {
			name = "global-lock"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				w := benchWorld(b, experiments.Options{
					Env: experiments.RakisSGX, NumXSKs: 4, ServerQueues: 8,
					GlobalLockStack: global,
				})
				res, err := workloads.Memcached(w.WorkloadEnv(), workloads.MemcachedParams{
					ServerThreads: 4, Ops: 1200,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.OpsPerSec / 1e3
				w.Close()
			}
			b.ReportMetric(last, "virt-kops")
		})
	}
}

// BenchmarkAblationXSKCount shows the multi-queue scaling the Memcached
// experiment depends on: one XSK versus four.
func BenchmarkAblationXSKCount(b *testing.B) {
	for _, xsks := range []int{1, 4} {
		b.Run(fmt.Sprintf("%dxsk", xsks), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				w := benchWorld(b, experiments.Options{
					Env: experiments.RakisSGX, NumXSKs: xsks, ServerQueues: 8,
				})
				res, err := workloads.Memcached(w.WorkloadEnv(), workloads.MemcachedParams{
					ServerThreads: 4, Ops: 1200,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.OpsPerSec / 1e3
				w.Close()
			}
			b.ReportMetric(last, "virt-kops")
		})
	}
}

// BenchmarkAblationIoUringDepth varies the fstime block size to expose
// the io_uring wake-latency amortization the paper's §6.2 discusses.
func BenchmarkAblationIoUringDepth(b *testing.B) {
	for _, block := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("%dB", block), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				w := benchWorld(b, experiments.Options{Env: experiments.RakisSGX})
				res, err := workloads.Fstime(w.WorkloadEnv(), workloads.FstimeParams{
					BlockSize: block, TotalBytes: 1 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.KBps / 1024
				w.Close()
			}
			b.ReportMetric(last, "virt-MB/s")
		})
	}
}

// BenchmarkAblationSelectVsEpoll compares the paper's select-based Redis
// event loop (forced by the prototype's missing epoll, §6.2) against the
// epoll extension this reproduction adds, under RAKIS-SGX.
func BenchmarkAblationSelectVsEpoll(b *testing.B) {
	for _, epoll := range []bool{false, true} {
		name := "select"
		if epoll {
			name = "epoll"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				w := benchWorld(b, experiments.Options{Env: experiments.RakisSGX})
				res, err := workloads.Redis(w.WorkloadEnv(), workloads.RedisParams{
					Command: "GET", Ops: 600, Connections: 20, UseEpoll: epoll,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.OpsPerSec / 1e3
				w.Close()
			}
			b.ReportMetric(last, "virt-kops")
		})
	}
}
