package rakis_test

// Tests for the epoll extension (the capability §6.2 notes the paper's
// prototype lacked): enclave-side epoll over armed io_uring polls under
// RAKIS, host epoll under the baselines — same unmodified caller code.

import (
	"testing"
	"time"

	"rakis/internal/experiments"
	"rakis/internal/sys"
	"rakis/internal/workloads"
)

func TestEpollAllEnvironments(t *testing.T) {
	for _, env := range []experiments.Environment{
		experiments.Native, experiments.GramineSGX, experiments.RakisSGX,
	} {
		t.Run(env.String(), func(t *testing.T) {
			w := newWorld(t, env, nil)
			srv, err := w.ServerThread()
			if err != nil {
				t.Fatal(err)
			}
			ufd, _ := srv.Socket(sys.UDP)
			if err := srv.Bind(ufd, 7100); err != nil {
				t.Fatal(err)
			}
			epfd, err := srv.EpollCreate()
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.EpollCtl(epfd, sys.EpollCtlAdd, ufd, sys.PollIn); err != nil {
				t.Fatal(err)
			}

			// Nothing ready: zero-timeout wait reports nothing.
			evs := make([]sys.EpollEvent, 4)
			if n, err := srv.EpollWait(epfd, evs, 0); err != nil || n != 0 {
				t.Fatalf("idle wait = %d, %v", n, err)
			}

			// A datagram arrives: the wait fires with the right fd.
			cli := w.ClientThread()
			cfd, _ := cli.Socket(sys.UDP)
			go func() {
				time.Sleep(5 * time.Millisecond)
				cli.SendTo(cfd, []byte("wake"), sys.Addr{IP: w.ServerIP, Port: 7100})
			}()
			n, err := srv.EpollWait(epfd, evs, 2*time.Second)
			if err != nil || n != 1 {
				t.Fatalf("wait = %d, %v", n, err)
			}
			if evs[0].FD != ufd || evs[0].Events&sys.PollIn == 0 {
				t.Fatalf("event = %+v", evs[0])
			}
			buf := make([]byte, 64)
			if rn, _, err := srv.RecvFrom(ufd, buf, false); err != nil || rn != 4 {
				t.Fatalf("recv after epoll = %d, %v", rn, err)
			}

			// Deregistration stops delivery.
			if err := srv.EpollCtl(epfd, sys.EpollCtlDel, ufd, 0); err != nil {
				t.Fatal(err)
			}
			cli.SendTo(cfd, []byte("silent"), sys.Addr{IP: w.ServerIP, Port: 7100})
			time.Sleep(20 * time.Millisecond)
			if n, _ := srv.EpollWait(epfd, evs, 0); n != 0 {
				t.Fatal("deleted fd must not fire")
			}
			if err := srv.Close(epfd); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEpollMixedProvidersUnderRakis(t *testing.T) {
	// One epoll instance spanning an enclave UDP socket and a host TCP
	// connection — the cross-provider scenario of §4.2, now with epoll
	// semantics (quiet descriptors stay armed between waits).
	w := newWorld(t, experiments.RakisSGX, nil)
	srv, err := w.ServerThread()
	if err != nil {
		t.Fatal(err)
	}
	ufd, _ := srv.Socket(sys.UDP)
	srv.Bind(ufd, 7101)
	lfd, _ := srv.Socket(sys.TCP)
	srv.Bind(lfd, 6400)
	srv.Listen(lfd, 4)

	cli := w.ClientThread()
	tfd, _ := cli.Socket(sys.TCP)
	if err := cli.Connect(tfd, sys.Addr{IP: experiments.KernelIP, Port: 6400}); err != nil {
		t.Fatal(err)
	}
	sfd, _, err := srv.Accept(lfd, true)
	if err != nil {
		t.Fatal(err)
	}

	epfd, _ := srv.EpollCreate()
	srv.EpollCtl(epfd, sys.EpollCtlAdd, ufd, sys.PollIn)
	srv.EpollCtl(epfd, sys.EpollCtlAdd, sfd, sys.PollIn)

	before := w.Counters.Snapshot()
	// TCP data fires the host-side entry.
	cli.Send(tfd, []byte("tcp"))
	evs := make([]sys.EpollEvent, 4)
	n, err := srv.EpollWait(epfd, evs, 2*time.Second)
	if err != nil || n != 1 || evs[0].FD != sfd {
		t.Fatalf("tcp wait = %d, %v, %+v", n, err, evs[0])
	}
	buf := make([]byte, 64)
	srv.Recv(sfd, buf, true)

	// UDP data fires the enclave-side entry.
	cfd, _ := cli.Socket(sys.UDP)
	cli.SendTo(cfd, []byte("udp"), sys.Addr{IP: w.ServerIP, Port: 7101})
	n, err = srv.EpollWait(epfd, evs, 2*time.Second)
	if err != nil || n != 1 || evs[0].FD != ufd {
		t.Fatalf("udp wait = %d, %v, %+v", n, err, evs[0])
	}
	// The whole dance happened without enclave exits.
	diff := w.Counters.Snapshot().Sub(before)
	if diff.EnclaveExits != 0 {
		t.Fatalf("epoll path caused %d exits, want 0", diff.EnclaveExits)
	}
}

func TestEpollCloseWhileArmed(t *testing.T) {
	// Regression: closing a descriptor while it sits armed in the
	// io_uring-poll cache must cancel the armed poll (PollCancels) and
	// purge it from every epoll interest set — otherwise the next wait
	// re-arms a poll on a descriptor the application no longer owns and
	// reports a stale event for it.
	w := newWorld(t, experiments.RakisSGX, nil)
	srv, err := w.ServerThread()
	if err != nil {
		t.Fatal(err)
	}
	lfd, _ := srv.Socket(sys.TCP)
	srv.Bind(lfd, 6500)
	srv.Listen(lfd, 4)
	cli := w.ClientThread()
	tfd, _ := cli.Socket(sys.TCP)
	if err := cli.Connect(tfd, sys.Addr{IP: experiments.KernelIP, Port: 6500}); err != nil {
		t.Fatal(err)
	}
	sfd, _, err := srv.Accept(lfd, true)
	if err != nil {
		t.Fatal(err)
	}

	epfd, _ := srv.EpollCreate()
	if err := srv.EpollCtl(epfd, sys.EpollCtlAdd, sfd, sys.PollIn); err != nil {
		t.Fatal(err)
	}
	// A quiet zero-timeout wait arms the poll and leaves it cached.
	evs := make([]sys.EpollEvent, 4)
	if n, err := srv.EpollWait(epfd, evs, 0); err != nil || n != 0 {
		t.Fatalf("idle wait = %d, %v", n, err)
	}

	before := w.Counters.Snapshot()
	if err := srv.Close(sfd); err != nil {
		t.Fatal(err)
	}
	diff := w.Counters.Snapshot().Sub(before)
	if diff.PollCancels == 0 {
		t.Fatal("close of an armed descriptor cancelled no polls")
	}

	// Data that would have fired the old arm must not surface: the
	// closed fd is out of the interest set, so the wait sees nothing —
	// neither readiness nor a stale PollErr from re-arming a poll on the
	// dead descriptor. The window is long enough for the kernel worker
	// to answer any such re-arm.
	cli.Send(tfd, []byte("late"))
	mid := w.Counters.Snapshot()
	if n, err := srv.EpollWait(epfd, evs, 50*time.Millisecond); err != nil || n != 0 {
		t.Fatalf("wait after close = %d, %v (event %+v)", n, err, evs[0])
	}
	// And the wait over the now-empty set must not have touched the
	// ring at all — an arm submitted for the closed descriptor is the
	// leaked poll this test guards against.
	if ops := w.Counters.Snapshot().Sub(mid).IoUringOps; ops != 0 {
		t.Fatalf("wait over purged set submitted %d ring ops", ops)
	}
}

func TestRedisWithEpollAllEnvironments(t *testing.T) {
	// The full Redis workload on the epoll event loop — exercising the
	// extension end to end in three environments.
	for _, env := range []experiments.Environment{
		experiments.Native, experiments.RakisSGX,
	} {
		t.Run(env.String(), func(t *testing.T) {
			w := newWorld(t, env, nil)
			res, err := workloads.Redis(w.WorkloadEnv(), workloads.RedisParams{
				Command: "GET", Ops: 200, Connections: 10, UseEpoll: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 200 || res.OpsPerSec <= 0 {
				t.Fatalf("res = %+v", res)
			}
		})
	}
}
