module rakis

go 1.23
