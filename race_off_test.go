//go:build !race

package rakis_test

// raceDetectorEnabled reports whether this binary was built with -race.
// See race_on_test.go for why CI must run the FM/ring tests under both
// build modes.
const raceDetectorEnabled = false
