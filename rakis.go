// Package rakis is a working reproduction of RAKIS (Alharthi et al.,
// EuroSys '25): secure fast IO primitives across trust boundaries on
// Intel SGX, built on simulated substrates (see DESIGN.md).
//
// RAKIS lets unmodified applications inside an SGX enclave use two Linux
// fast IO kernel primitives without enclave exits on the data path:
//
//   - AF_XDP sockets carry UDP traffic into an in-enclave UDP/IP stack;
//   - io_uring carries TCP send/recv, file read/write, and poll.
//
// Every value read from the shared untrusted rings is validated against
// trusted state (Table 2 of the paper) before use; hostile values are
// refused without crashing. A Monitor Module thread outside the enclave
// issues the residual wakeup syscalls.
//
// Usage: build a simulated host (internal/hostos) with a network
// namespace, then Boot a Runtime on it and obtain per-thread sys.Sys
// handles with NewThread. Workloads written against sys.Sys run
// unmodified on RAKIS and on the Gramine/Native baselines.
package rakis

import (
	"fmt"
	"sync"
	"time"

	"rakis/internal/chaos"
	"rakis/internal/fm"
	"rakis/internal/hostos"
	"rakis/internal/iouring"
	"rakis/internal/libos"
	"rakis/internal/mm"
	"rakis/internal/netsim"
	"rakis/internal/netstack"
	"rakis/internal/sm"
	"rakis/internal/telemetry"
	"rakis/internal/tuner"
	"rakis/internal/vtime"
	"rakis/internal/xsk"
)

// Config configures a RAKIS runtime. Zero values select the evaluation
// setup of §6.1: one XSK, 2K rings, a 16 MB UMem of 2 KB frames.
type Config struct {
	// IP is the enclave stack's address on the interface. It must differ
	// from the kernel stack's address; the XDP program steers traffic
	// for this address to the XSKs.
	IP netstack.IP4
	// NumXSKs is the number of XDP sockets (and FM pump threads), bound
	// to interface queues 0..NumXSKs-1. Default 1; the Memcached
	// experiment uses 4.
	NumXSKs int
	// RingSize is the size of each XSK ring (default 2048).
	RingSize uint32
	// FrameSize is the UMem frame size (default 2048).
	FrameSize uint32
	// FrameCount is the number of UMem frames per XSK (default 8192,
	// i.e. 16 MB at the default frame size).
	FrameCount uint32
	// UringEntries is the per-thread io_uring depth (default 64).
	UringEntries uint32
	// BounceBytes is the per-thread untrusted bounce buffer (default 256 KiB).
	BounceBytes int
	// Mode selects the fallback-syscall path: libos.SGX for RAKIS-SGX,
	// libos.Direct for RAKIS-Direct.
	Mode libos.Mode
	// Model is the enclave-side cost model. For RAKIS-Direct runs pass a
	// model whose boundary-copy cost equals a plain copy.
	Model *vtime.Model
	// Counters receives statistics; it may be nil.
	Counters *vtime.Counters
	// GlobalLockStack enables the global-lock netstack ablation.
	GlobalLockStack bool
	// RoundRobinTX retains the pre-shard TX queue selection as an
	// ablation: outbound frames rotate across the XSKs instead of
	// following the RSS flow hash. Replies then leave on a different
	// queue than the kernel steers the flow's RX to, defeating shard
	// affinity (the sharded-scale-out figure measures the cost).
	RoundRobinTX bool
	// CopyRX selects the legacy copying RX path: every received frame is
	// copied out of the UMem before the stack sees it. Off (the default)
	// the FM pumps hand the stack certified in-place frame views and the
	// single explicit copy happens at the app-payload boundary. This is
	// the zero-copy ablation knob.
	CopyRX bool
	// Chaos, when non-nil, arms hostile-host fault injection: Boot hands
	// the injector to the kernel and the Monitor Module and starts its
	// background scribbler. The trusted side gets no hint that chaos is
	// on — surviving it is the point.
	Chaos *chaos.Injector
	// Telemetry, when non-nil, instruments the whole runtime: every
	// enclave thread gets a cost-attribution probe, and the boundary
	// layers (XSKs, io_urings, MM, host kernel, chaos) get trace buffers.
	// Nil keeps the disabled fast path — one pointer test per hook.
	Telemetry *telemetry.Sink
	// Adaptive enables the self-tuning runtime (internal/tuner): a
	// control loop steps on trusted-side telemetry and adapts the
	// advised vector width, the wakeup-vs-busy-poll mode, and the
	// recommended ring geometry. Off, the three knobs stay wherever
	// BatchHint/BusyPoll pin them.
	Adaptive bool
	// TunerParams overrides the control-loop pacing and safety envelope;
	// the zero value selects tuner.DefaultParams. Ignored unless
	// Adaptive.
	TunerParams tuner.Params
	// BusyPoll statically selects the kernel busy-poll wakeup mode
	// instead of MM need-wakeup signalling. Ignored when Adaptive (the
	// tuner owns the mode).
	BusyPoll bool
	// BatchHint statically pins the vector width AdviseBatch reports to
	// applications (default 1). Ignored when Adaptive.
	BatchHint int
	// EnclaveTCP runs TCP inside the trimmed enclave stack over the XSK
	// path instead of proxying it through io_uring: listen/accept/
	// connect/send/recv on sys.TCP sockets stay enclave-side with zero
	// steady-state exits, using the stateless SYN-cookie listen path.
	// Off (the paper's configuration, §4.2/§7), TCP goes to the host
	// through the io_uring proxy.
	EnclaveTCP bool
}

func (c *Config) fill() {
	if c.NumXSKs <= 0 {
		c.NumXSKs = 1
	}
	if c.RingSize == 0 {
		c.RingSize = 2048
	}
	if c.FrameSize == 0 {
		c.FrameSize = 2048
	}
	if c.FrameCount == 0 {
		c.FrameCount = 8192
	}
	if c.UringEntries == 0 {
		c.UringEntries = 64
	}
	if c.BounceBytes == 0 {
		c.BounceBytes = 256 * 1024
	}
	if c.Model == nil {
		c.Model = vtime.Default()
	}
}

// Runtime is one booted RAKIS instance.
type Runtime struct {
	cfg  Config
	kern *hostos.Kernel
	ns   *hostos.NetNS

	hostProc  *hostos.Proc
	libosProc *libos.Process

	// Stack is the in-enclave trimmed UDP/IP stack.
	Stack *netstack.Stack
	link  *sm.XskLink
	socks []*xsk.Socket
	pumps []*fm.XskPump
	mon   *mm.Monitor

	wdStop chan struct{}
	wdDone chan struct{}

	// Self-tuning runtime: tuning is the shared cell the data path
	// reads; tun and the loop goroutine exist only when cfg.Adaptive.
	// shardTuning holds one cell per XSK shard — at NumXSKs == 1 (or
	// static runs) every slot aliases tuning, so the single-queue
	// configuration is bit-identical to the pre-shard runtime; with
	// multiple shards under Adaptive each slot is an independent cell
	// stepped by its own shardTuns entry on per-shard evidence.
	tuning      *tuner.State
	tun         *tuner.Tuner
	shardTuning []*tuner.State
	shardTuns   []*tuner.Tuner
	tunClk     vtime.Clock
	depthHists []*telemetry.Histogram
	appDepth   *telemetry.Histogram
	tunStop    chan struct{}
	tunDone    chan struct{}
	tunKick    chan struct{}

	mu       sync.Mutex
	fds      map[int]*entry
	nextFD   int
	uringFDs []int
}

type entryKind int

const (
	kindUDP entryKind = iota
	kindTCP
	kindHost
	kindEpoll
)

type entry struct {
	kind entryKind
	udp  *netstack.UDPSocket
	tcp  *netstack.TCPSocket
	// tcpPort holds a bound-but-not-yet-listening enclave TCP port
	// (bind() stores it; listen() consumes it).
	tcpPort uint16
	host    int
	ep      *repoll
}

// Boot initializes RAKIS on a host network namespace: it performs the
// untrusted XSK setup, validates and attaches the FastPath Modules,
// installs the steering XDP program, starts the per-XSK pump threads,
// and launches the Monitor Module.
func Boot(kern *hostos.Kernel, ns *hostos.NetNS, cfg Config) (*Runtime, error) {
	cfg.fill()
	if cfg.NumXSKs > ns.Dev.NumQueues() {
		return nil, fmt.Errorf("rakis: %d XSKs but interface has %d queues",
			cfg.NumXSKs, ns.Dev.NumQueues())
	}
	rt := &Runtime{
		cfg:      cfg,
		kern:     kern,
		ns:       ns,
		hostProc: kern.NewProc(ns, cfg.Counters),
		fds:      make(map[int]*entry),
		nextFD:   1 << 20,
		wdStop:   make(chan struct{}),
		wdDone:   make(chan struct{}),
	}
	// Arm the hostile host before any shared ring exists, so the injector
	// sees every ring the setup syscalls create.
	if cfg.Chaos != nil {
		kern.Chaos = cfg.Chaos
		cfg.Chaos.Bind(kern.Space, cfg.Counters)
		cfg.Chaos.SetTrace(cfg.Telemetry.NewBuf("chaos"))
	}
	if cfg.Telemetry != nil {
		telemetry.BindCounters(cfg.Telemetry.Reg, cfg.Counters)
		if kern.Trace == nil {
			kern.Trace = cfg.Telemetry.NewBuf("hostos")
		}
	}
	var bootClk vtime.Clock

	for i := 0; i < cfg.NumXSKs; i++ {
		res, err := rt.hostProc.XSKSetup(ns, i, cfg.RingSize, cfg.FrameSize, cfg.FrameCount, &bootClk)
		if err != nil {
			return nil, err
		}
		sock, err := xsk.Attach(xsk.Config{
			Space: kern.Space, Setup: res.Setup,
			RingSize: cfg.RingSize, FrameSize: cfg.FrameSize, FrameCount: cfg.FrameCount,
			Counters: cfg.Counters, Model: cfg.Model,
			Trace: cfg.Telemetry.NewBuf(fmt.Sprintf("xsk%d", i)),
		})
		if err != nil {
			return nil, fmt.Errorf("rakis: XSK %d rejected: %w", i, err)
		}
		rt.socks = append(rt.socks, sock)
	}

	rt.link = sm.NewXskLink(rt.socks, ns.Dev.MAC(), ns.Dev.MTU())
	rt.link.SetRoundRobin(cfg.RoundRobinTX)
	stack, err := sm.NewEnclaveStack(rt.link, cfg.IP, cfg.Model, cfg.Counters, cfg.GlobalLockStack, cfg.EnclaveTCP)
	if err != nil {
		return nil, err
	}
	rt.Stack = stack

	// The shared tuning cell exists in every configuration: static runs
	// pin it at (BatchHint, BusyPoll) and the data path reads it the same
	// way, so adaptive and static differ only in who writes the cell.
	batchHint := cfg.BatchHint
	if batchHint <= 0 {
		batchHint = 1
	}
	rt.tuning = tuner.NewState(batchHint, cfg.BusyPoll && !cfg.Adaptive)
	if cfg.Adaptive {
		rt.tun = tuner.New(cfg.TunerParams, rt.tuning)
	}
	// Every shard slot starts as an alias of the global cell; only a
	// multi-queue adaptive runtime splits them into independent cells.
	rt.shardTuning = make([]*tuner.State, cfg.NumXSKs)
	for i := range rt.shardTuning {
		rt.shardTuning[i] = rt.tuning
	}
	if cfg.Adaptive && cfg.NumXSKs > 1 {
		rt.shardTuns = make([]*tuner.Tuner, cfg.NumXSKs)
		for i := range rt.shardTuns {
			rt.shardTuning[i] = tuner.NewState(batchHint, false)
			rt.shardTuns[i] = tuner.New(cfg.TunerParams, rt.shardTuning[i])
		}
	}
	rt.link.SetTuning(rt.tuning)
	rt.link.SetShardTuning(rt.shardTuning)

	for i, sock := range rt.socks {
		pump := fm.NewXskPump(sock, stack, cfg.Model)
		pump.SetCopyRX(cfg.CopyRX)
		pump.SetShard(i)
		pump.SetTuning(rt.shardTuning[i])
		var depth *telemetry.Histogram
		if cfg.Telemetry != nil {
			depth = cfg.Telemetry.Reg.Histogram(fmt.Sprintf("fm.xsk%d.qdepth", i))
		} else {
			depth = &telemetry.Histogram{}
		}
		pump.SetDepthHist(depth)
		rt.depthHists = append(rt.depthHists, depth)
		cfg.Telemetry.NewProbe(fmt.Sprintf("fm.xsk%d", i), pump.Clock())
		rt.pumps = append(rt.pumps, pump)
	}

	// The app-side receive backlog: XSK ring occupancy only shows load
	// the pump is behind on, but under a saturating app the queue builds
	// at the socket layer — the tuner needs both views of depth.
	if cfg.Telemetry != nil {
		rt.appDepth = cfg.Telemetry.Reg.Histogram("app.qdepth")
	} else {
		rt.appDepth = &telemetry.Histogram{}
	}
	rt.depthHists = append(rt.depthHists, rt.appDepth)

	ns.AttachXDP(steeringProgram(cfg.IP))
	installRSS(ns, cfg.IP, cfg.NumXSKs)

	rt.mon = mm.New(rt.hostProc)
	for _, sock := range rt.socks {
		setup := xsk.Setup{
			FD:       sock.FD(),
			FillBase: sock.Fill.Base(), TXBase: sock.TX.Base(),
			RXBase: sock.RX.Base(), ComplBase: sock.Compl.Base(),
		}
		if err := rt.mon.WatchXSK(kern.Space, setup); err != nil {
			return nil, err
		}
	}

	rt.mon.Chaos = cfg.Chaos
	rt.mon.Counters = cfg.Counters
	rt.mon.Trace = cfg.Telemetry.NewBuf("mm")
	cfg.Telemetry.NewProbe("mm", rt.mon.Clock())

	// Per-shard suppression gauges and the busy-poll worker clocks: the
	// spin burn must show up in the breakdown, or busy-poll looks free.
	for i, sock := range rt.socks {
		fd := sock.FD()
		if cfg.Telemetry != nil {
			cfg.Telemetry.Reg.Reader(fmt.Sprintf("mm.xsk%d.wakeups_suppressed", i),
				func() uint64 { return rt.mon.Suppressed(fd) })
			// Per-shard rollup: RX packets the shard's pump moved, TX
			// packets its link lane sent, wakeup syscalls the MM issued
			// for it, and the frames it refused. The shards figure table
			// consumes these via Registry.Snapshot.
			cfg.Telemetry.Reg.Reader(fmt.Sprintf("fm.xsk%d.rx_pkts", i), rt.pumps[i].Moved)
			cfg.Telemetry.Reg.Reader(fmt.Sprintf("sm.xsk%d.tx_pkts", i),
				func() uint64 { return rt.link.ShardTx(i) })
			cfg.Telemetry.Reg.Reader(fmt.Sprintf("mm.xsk%d.wakeups", i),
				func() uint64 { return rt.mon.Wakeups(fd) })
			cfg.Telemetry.Reg.Reader(fmt.Sprintf("xsk%d.refusals", i), sock.Refusals)
		}
		if pc := rt.hostProc.XSKPollClock(fd); pc != nil {
			cfg.Telemetry.NewProbe(fmt.Sprintf("napi.xsk%d", i), pc)
		}
		if tc := rt.hostProc.XSKTxClock(fd); tc != nil {
			cfg.Telemetry.NewProbe(fmt.Sprintf("txdrv.xsk%d", i), tc)
		}
	}
	if cfg.BusyPoll && !cfg.Adaptive {
		// Static busy-poll: apply immediately and keep the MM's applied
		// state consistent so its sweeps skip the XSK watches.
		rt.mon.RequestBusyPoll(true)
	}
	if cfg.Adaptive {
		cfg.Telemetry.NewProbe("tuner", &rt.tunClk)
		if cfg.Telemetry != nil {
			cfg.Telemetry.Reg.Reader("tuner.batch", func() uint64 { return uint64(rt.tuning.Batch()) })
			cfg.Telemetry.Reg.Reader("tuner.busypoll", func() uint64 {
				if rt.tuning.BusyPoll() {
					return 1
				}
				return 0
			})
			cfg.Telemetry.Reg.Reader("tuner.mode_switches", func() uint64 { return rt.tun.Stats().ModeSwitches })
			cfg.Telemetry.Reg.Reader("tuner.clamps", func() uint64 { return rt.tun.Stats().Clamps })
			cfg.Telemetry.Reg.Reader("tuner.envelope_violations", func() uint64 { return rt.tun.Stats().EnvelopeViolations })
		}
	}

	rt.libosProc = libos.NewProcess(kern.NewProc(ns, cfg.Counters), cfg.Mode, cfg.Counters)
	rt.libosProc.SetTelemetry(cfg.Telemetry)

	// TX wakeups are edge-triggered: a swallowed sendto leaves xTX
	// stranded forever. Each pump gets the nudge/kick ladder against its
	// own socket.
	for i, p := range rt.pumps {
		fd := rt.socks[i].FD()
		p.SetWaker(iouring.Waker{
			Nudge: rt.mon.Nudge,
			Dead:  rt.mon.Dead,
			Kick: func() {
				var clk vtime.Clock
				rt.hostProc.XSKSendto(fd, &clk)
				rt.fallbackExit(1)
			},
		})
	}

	for _, p := range rt.pumps {
		p.Start()
	}
	rt.mon.Start()
	if cfg.Chaos != nil {
		cfg.Chaos.Start()
	}
	go rt.watchdog()
	if cfg.Adaptive {
		rt.tunStop = make(chan struct{})
		rt.tunDone = make(chan struct{})
		rt.tunKick = make(chan struct{}, 1)
		go rt.tuneLoop()
	}
	return rt, nil
}

// tuneWindow is the previous cut of the tuner's counter inputs.
type tuneWindow struct {
	ops, bcalls, bmsgs, suppressed, drops uint64
	depth                                 telemetry.HistSnapshot
	// shards holds the per-shard cut when the runtime runs independent
	// shard tuners (nil otherwise).
	shards []shardWindow
}

// shardWindow is one shard's slice of the counter cut: packets its own
// pump and TX lane moved, wakeups the MM suppressed for its fd, and its
// pump's queue-depth histogram.
type shardWindow struct {
	ops, suppressed uint64
	depth           telemetry.HistSnapshot
}

// tuneLoop runs the self-tuning control loop: each step differences the
// trusted counters against the previous window, steps the tuner, and
// forwards the wakeup-mode request to the Monitor Module (which applies
// it with host-thread syscalls — a mode switch never costs an enclave
// exit). Steps are driven two ways: the data path kicks the loop when
// fresh evidence lands (so a short hot burst gets as many control steps
// as it has traffic, independent of wall-clock timer resolution), and a
// ticker provides the idle heartbeat that lets the tuner decay batch
// width and leave busy-poll when traffic stops.
func (rt *Runtime) tuneLoop() {
	defer close(rt.tunDone)
	tick := time.NewTicker(100 * time.Microsecond)
	defer tick.Stop()
	var prev tuneWindow
	for {
		fromTick := false
		select {
		case <-rt.tunStop:
			return
		case <-rt.tunKick:
		case <-tick.C:
			fromTick = true
		}
		rt.tuneStep(&prev, fromTick)
	}
}

// Control-step evidence floors: a step fires once a window holds this
// many ops or depth samples; smaller windows keep accumulating. Idle
// ticker steps (no traffic at all) bypass the floor so batch width and
// busy-poll can decay when load stops.
const (
	tuneWindowOps     = 16
	tuneWindowSamples = 8
)

// kickTuner nudges the control loop from the data path. Non-blocking
// and coalescing: a full kick channel means a step is already pending.
func (rt *Runtime) kickTuner() {
	if rt.tunKick == nil {
		return
	}
	select {
	case rt.tunKick <- struct{}{}:
	default:
	}
}

func (rt *Runtime) tuneStep(prev *tuneWindow, fromTick bool) {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	var cur tuneWindow
	if c := rt.cfg.Counters; c != nil {
		cur.ops = c.PacketsRx.Load() + c.PacketsTx.Load()
		cur.bcalls = c.BatchCalls.Load()
		cur.bmsgs = c.BatchedMsgs.Load()
		cur.drops = c.PacketsDropped.Load()
	}
	for _, s := range rt.mon.WatchStats() {
		cur.suppressed += s.Suppressed
	}
	for _, h := range rt.depthHists {
		cur.depth = cur.depth.Merge(h.Snapshot())
	}
	in := tuner.Input{
		Ops:        sub(cur.ops, prev.ops),
		BatchCalls: sub(cur.bcalls, prev.bcalls),
		BatchedMsgs: sub(cur.bmsgs, prev.bmsgs),
		Suppressed: sub(cur.suppressed, prev.suppressed),
		Drops:      sub(cur.drops, prev.drops),
		Depth:      cur.depth.Sub(prev.depth),
	}
	if in.Ops < tuneWindowOps && in.Depth.Count < tuneWindowSamples {
		// Thin evidence: a one-sample window would let a single quiet
		// drain vote down a ramp the backlog justifies. Accumulate —
		// unless the ticker says traffic has stopped entirely, which is
		// the decay path and needs no evidence.
		if !fromTick || in.Ops > 0 {
			return
		}
	}
	// The loop's own cost: one LibOS-call-sized charge per active step.
	// Idle steps are free spins on a parked thread and would otherwise
	// dominate the adaptive configuration's cycle count at trickle.
	if in.Ops > 0 || in.Depth.Count > 0 {
		rt.tunClk.Advance(rt.cfg.Model.LibOSCall)
	}
	d := rt.tun.Step(in)
	busy := d.Mode == tuner.ModeBusyPoll
	// Multi-queue adaptive runtimes additionally step one tuner per
	// shard on that shard's own evidence (its pump's RX, its TX lane,
	// its fd's suppressions, its queue depth plus the shared app
	// backlog). The global tuner keeps owning the advised batch width;
	// the wakeup mode the MM applies is the OR of every decision — one
	// hot shard is reason enough to spin, and the MM applies the mode
	// to all queues anyway.
	if rt.shardTuns != nil {
		cur.shards = make([]shardWindow, len(rt.shardTuns))
		app := rt.appDepth.Snapshot()
		for i, st := range rt.shardTuns {
			sw := &cur.shards[i]
			sw.ops = rt.pumps[i].Moved() + rt.link.ShardTx(i)
			sw.suppressed = rt.mon.Suppressed(rt.socks[i].FD())
			sw.depth = rt.depthHists[i].Snapshot().Merge(app)
			var p shardWindow
			if i < len(prev.shards) {
				p = prev.shards[i]
			}
			sd := st.Step(tuner.Input{
				Ops:         sub(sw.ops, p.ops),
				BatchCalls:  in.BatchCalls,
				BatchedMsgs: in.BatchedMsgs,
				Suppressed:  sub(sw.suppressed, p.suppressed),
				Drops:       in.Drops,
				Depth:       sw.depth.Sub(p.depth),
			})
			busy = busy || sd.Mode == tuner.ModeBusyPoll
		}
	}
	rt.mon.RequestBusyPoll(busy)
	*prev = cur
}

// watchdog is the MM-death degradation path (§4.3: the Monitor Module is
// outside the TCB, so its death may cost availability, never integrity).
// While the MM is alive it does nothing; once the MM thread is dead it
// issues every watched wakeup syscall directly — paying the enclave
// exits RAKIS normally avoids — so in-flight IO still completes.
func (rt *Runtime) watchdog() {
	defer close(rt.wdDone)
	var clk vtime.Clock
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-rt.wdStop:
			return
		case <-tick.C:
		}
		if !rt.mon.Dead() {
			continue
		}
		for _, s := range rt.socks {
			rt.hostProc.XSKSendto(s.FD(), &clk)
			rt.hostProc.XSKRecvfrom(s.FD(), &clk)
			rt.fallbackExit(2)
		}
		rt.mu.Lock()
		fds := append([]int(nil), rt.uringFDs...)
		rt.mu.Unlock()
		for _, fd := range fds {
			rt.hostProc.IoUringEnter(fd, &clk)
			rt.fallbackExit(1)
		}
	}
}

// fallbackExit accounts n wakeups paid as direct enclave exits because
// the free Monitor Module path was unavailable.
func (rt *Runtime) fallbackExit(n uint64) {
	if rt.cfg.Counters != nil {
		rt.cfg.Counters.FallbackExits.Add(n)
		rt.cfg.Counters.EnclaveExits.Add(n)
	}
}

// steeringProgram builds the XDP filter: IPv4 packets addressed to the
// enclave IP and ARP packets targeting it are redirected to the queue's
// XSK; everything else passes to the kernel stack.
func steeringProgram(ip netstack.IP4) hostos.XDPProg {
	return func(frame []byte) hostos.Verdict {
		eth, payload, err := netstack.ParseEth(frame)
		if err != nil {
			return hostos.VerdictPass
		}
		switch eth.Type {
		case netstack.EtherTypeIPv4:
			if len(payload) >= 20 && payload[0]>>4 == 4 {
				var dst netstack.IP4
				copy(dst[:], payload[16:20])
				if dst == ip {
					return hostos.VerdictRedirect
				}
			}
		case netstack.EtherTypeARP:
			if len(payload) >= 28 {
				var tpa netstack.IP4
				copy(tpa[:], payload[24:28])
				if tpa == ip {
					return hostos.VerdictRedirect
				}
			}
		}
		return hostos.VerdictPass
	}
}

// installRSS spreads enclave-bound flows over the XSK-backed queues and
// leaves other traffic on the default hash. The steering hash is
// netstack.FlowHash — the same function the enclave's demux shards and
// the link's flow-affine TX use — so a flow's RX queue, its demux
// shard, and its reply TX queue all agree by construction.
func installRSS(ns *hostos.NetNS, ip netstack.IP4, numXSKs int) {
	ns.Dev.SetRSS(func(data []byte, queues int) int {
		if len(data) >= 14+20 {
			etherType := uint16(data[12])<<8 | uint16(data[13])
			if etherType == 0x0800 {
				var dst netstack.IP4
				copy(dst[:], data[14+16:14+20])
				if dst == ip {
					if numXSKs == 1 {
						return 0
					}
					ihl := int(data[14]&0x0F) * 4
					if len(data) < 14+ihl+4 {
						// Too short to carry ports: the hash over no
						// bytes is the FNV offset basis.
						return int(2166136261 % uint32(numXSKs))
					}
					var src netstack.IP4
					copy(src[:], data[14+12:14+16])
					sport := uint16(data[14+ihl])<<8 | uint16(data[14+ihl+1])
					dport := uint16(data[14+ihl+2])<<8 | uint16(data[14+ihl+3])
					return netstack.RXShard(src, dst, sport, dport, numXSKs)
				}
			}
			if etherType == 0x0806 {
				return 0 // ARP always lands on queue 0 (XSK 0 or kernel)
			}
		}
		return netsim.DefaultRSS(data, queues)
	})
}

// Close stops the pumps, the monitor, and the enclave stack. The
// watchdog stops first: the monitor's normal shutdown looks exactly like
// an MM death, and must not trigger a burst of paid fallback exits.
func (rt *Runtime) Close() {
	if rt.tunStop != nil {
		select {
		case <-rt.tunStop:
		default:
			close(rt.tunStop)
		}
		<-rt.tunDone
	}
	select {
	case <-rt.wdStop:
	default:
		close(rt.wdStop)
	}
	<-rt.wdDone
	if rt.cfg.Chaos != nil {
		rt.cfg.Chaos.Stop()
	}
	for _, p := range rt.pumps {
		p.Close()
	}
	rt.mon.Close()
	// Retire any busy-poll workers the tuner (or a static BusyPoll
	// config) left running; their clocks stay readable for breakdowns.
	var clk vtime.Clock
	for _, s := range rt.socks {
		rt.hostProc.XSKBusyPoll(s.FD(), false, &clk)
	}
	rt.Stack.Close()
}

// SpliceUDPEcho registers a zero-copy in-place UDP echo on port: frames
// addressed to it are reflected RX→TX through the owning XSK without a
// payload copy. With CopyRX set the stack never sees views, so the
// registration is refused and a socket-level echo must serve the port.
// Passing enable=false unregisters. Returns whether the splice is
// active.
func (rt *Runtime) SpliceUDPEcho(port uint16, enable bool) bool {
	if enable && !rt.cfg.CopyRX {
		rt.Stack.SpliceUDPEcho(port, rt.link)
		return true
	}
	rt.Stack.SpliceUDPEcho(port, nil)
	return false
}

// Monitor exposes the Monitor Module (for tests and diagnostics).
func (rt *Runtime) Monitor() *mm.Monitor { return rt.mon }

// ShardStat is one XSK shard's rollup: the packets its pump and TX lane
// moved, the wakeup syscalls the MM issued and suppressed for its fd,
// the frames it refused, and its tuning cell's current operating point.
type ShardStat struct {
	Shard      int
	FD         int
	RxPkts     uint64
	TxPkts     uint64
	Wakeups    uint64
	Suppressed uint64
	Refusals   uint64
	Batch      int
	BusyPoll   bool
}

// ShardStats returns a coherent per-shard rollup, one entry per XSK.
// The same numbers are exported as fm.xsk<i>.rx_pkts /
// sm.xsk<i>.tx_pkts / mm.xsk<i>.wakeups / xsk<i>.refusals registry
// readers when telemetry is on; this accessor works either way.
func (rt *Runtime) ShardStats() []ShardStat {
	out := make([]ShardStat, len(rt.socks))
	for i, sock := range rt.socks {
		fd := sock.FD()
		st := rt.shardTuning[i]
		out[i] = ShardStat{
			Shard:      i,
			FD:         fd,
			RxPkts:     rt.pumps[i].Moved(),
			TxPkts:     rt.link.ShardTx(i),
			Wakeups:    rt.mon.Wakeups(fd),
			Suppressed: rt.mon.Suppressed(fd),
			Refusals:   sock.Refusals(),
			Batch:      st.Batch(),
			BusyPoll:   st.BusyPoll(),
		}
	}
	return out
}

// Pumps exposes the XSK pump threads (their clocks feed measurements).
func (rt *Runtime) Pumps() []*fm.XskPump { return rt.pumps }

// HostProc exposes the host-side process used for setup and the MM.
func (rt *Runtime) HostProc() *hostos.Proc { return rt.hostProc }

// Tuning exposes the shared knob cell the data path reads (never nil
// after Boot).
func (rt *Runtime) Tuning() *tuner.State { return rt.tuning }

// TunerStats returns the control loop's accounting; the zero Stats when
// the runtime is not adaptive. The chaos harness asserts
// EnvelopeViolations == 0 and MinSwitchGap >= Guard on it.
func (rt *Runtime) TunerStats() tuner.Stats {
	if rt.tun == nil {
		return tuner.Stats{}
	}
	return rt.tun.Stats()
}

// TunerDecision returns the operating point currently in effect (the
// static pin when not adaptive).
func (rt *Runtime) TunerDecision() tuner.Decision {
	if rt.tun == nil {
		d := tuner.Decision{Batch: rt.tuning.Batch(), Ring: rt.cfg.RingSize}
		if rt.tuning.BusyPoll() {
			d.Mode = tuner.ModeBusyPoll
		}
		return d
	}
	return rt.tun.Current()
}

// TunerHistory returns the trail of applied decisions (nil when not
// adaptive).
func (rt *Runtime) TunerHistory() []tuner.Decision {
	if rt.tun == nil {
		return nil
	}
	return rt.tun.History()
}

// TunerRecommend returns the geometry the tuner recommends for the next
// (re)configure: ring size and UMem frame count derived from the
// observed depth percentiles. Zeroes when not adaptive.
func (rt *Runtime) TunerRecommend() (ringSize, frameCount uint32) {
	if rt.tun == nil {
		return 0, 0
	}
	d := rt.tun.Recommend()
	return d.Ring, d.Frames
}

// registerEntry installs an fd table entry and returns its descriptor.
func (rt *Runtime) registerEntry(e *entry) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if e.kind == kindHost {
		rt.fds[e.host] = e
		return e.host
	}
	fd := rt.nextFD
	rt.nextFD++
	rt.fds[fd] = e
	return fd
}

func (rt *Runtime) lookup(fd int) (*entry, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	e, ok := rt.fds[fd]
	return e, ok
}

func (rt *Runtime) remove(fd int) (*entry, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	e, ok := rt.fds[fd]
	if ok {
		delete(rt.fds, fd)
	}
	return e, ok
}

// attachUring builds one application thread's io_uring FM: the host-side
// setup "syscalls" followed by in-enclave validation (§4.1).
func (rt *Runtime) attachUring(clk *vtime.Clock) (*fm.UringFM, error) {
	setup, err := rt.hostProc.IoUringSetup(rt.cfg.UringEntries, clk)
	if err != nil {
		return nil, err
	}
	ring, err := iouring.Attach(iouring.Config{
		Space: rt.kern.Space, Setup: setup, Entries: rt.cfg.UringEntries,
		Counters: rt.cfg.Counters, Model: rt.cfg.Model,
	})
	if err != nil {
		return nil, err
	}
	ufm, err := fm.NewUringFM(ring, rt.kern.Space, rt.cfg.Model, rt.cfg.BounceBytes)
	if err != nil {
		return nil, err
	}
	if err := rt.mon.WatchUring(rt.kern.Space, setup); err != nil {
		return nil, err
	}
	ring.SetWaker(iouring.Waker{
		Nudge: rt.mon.Nudge,
		Dead:  rt.mon.Dead,
		Kick: func() {
			var kclk vtime.Clock
			rt.hostProc.IoUringEnter(setup.FD, &kclk)
			rt.fallbackExit(1)
		},
	})
	rt.mu.Lock()
	rt.uringFDs = append(rt.uringFDs, setup.FD)
	rt.mu.Unlock()
	return ufm, nil
}
