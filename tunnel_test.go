package rakis_test

// End-to-end test of the §7 extension: a WireGuard-style layer-3 tunnel
// terminating inside the enclave, carried over RAKIS's XSK UDP path. The
// host OS sees only sealed datagrams; confidentiality and integrity of
// the tunnelled packets no longer depend on trusting it.

import (
	"bytes"
	"testing"

	"rakis/internal/experiments"
	"rakis/internal/sys"
	"rakis/internal/wgtun"
)

func TestWireguardTunnelOverRakis(t *testing.T) {
	w := newWorld(t, experiments.RakisSGX, nil)
	psk := bytes.Repeat([]byte{7}, wgtun.KeyBytes)

	// Enclave side: a tunnel responder behind a RAKIS UDP socket.
	srv, err := w.ServerThread()
	if err != nil {
		t.Fatal(err)
	}
	sfd, _ := srv.Socket(sys.UDP)
	if err := srv.Bind(sfd, 51820); err != nil {
		t.Fatal(err)
	}
	enclave, _ := wgtun.New(psk)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 65536)
		for {
			n, src, err := srv.RecvFrom(sfd, buf, true)
			if err != nil {
				done <- err
				return
			}
			reply, payload, err := enclave.HandleMessage(buf[:n])
			if err != nil {
				done <- err
				return
			}
			if reply != nil {
				srv.SendTo(sfd, reply, src)
			}
			if payload != nil {
				// Echo the decrypted layer-3 packet back, re-sealed.
				sealed, err := enclave.Seal(payload)
				if err != nil {
					done <- err
					return
				}
				srv.SendTo(sfd, sealed, src)
				done <- nil
				return
			}
		}
	}()

	// Native peer.
	cli := w.ClientThread()
	cfd, _ := cli.Socket(sys.UDP)
	peer, _ := wgtun.New(psk)
	dst := sys.Addr{IP: w.ServerIP, Port: 51820}

	init, err := peer.HandshakeInit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.SendTo(cfd, init, dst); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 65536)
	n, _, err := cli.RecvFrom(cfd, buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := peer.HandleMessage(buf[:n]); err != nil {
		t.Fatalf("handshake reply: %v", err)
	}
	if !peer.Up() {
		t.Fatal("session not established")
	}

	// Send an inner packet; the wire carries only ciphertext.
	inner := []byte("inner layer-3 packet: the host OS must never see this")
	sealed, _ := peer.Seal(inner)
	if bytes.Contains(sealed, []byte("host OS")) {
		t.Fatal("plaintext on the wire")
	}
	if _, err := cli.SendTo(cfd, sealed, dst); err != nil {
		t.Fatal(err)
	}
	n, _, err = cli.RecvFrom(cfd, buf, true)
	if err != nil {
		t.Fatal(err)
	}
	_, echoed, err := peer.HandleMessage(buf[:n])
	if err != nil || !bytes.Equal(echoed, inner) {
		t.Fatalf("tunnel echo = %q, %v", echoed, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
