// Quickstart: boot RAKIS on the simulated testbed, run a UDP echo server
// inside the "enclave", and contrast its enclave-exit count and virtual
// throughput with the same unmodified code under Gramine-SGX.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rakis"
	"rakis/internal/hostos"
	"rakis/internal/libos"
	"rakis/internal/mem"
	"rakis/internal/netsim"
	"rakis/internal/netstack"
	"rakis/internal/sys"
	"rakis/internal/vtime"
)

func main() {
	// 1. Build the simulated machine: one address space, a kernel, and
	//    two 25 Gbps interfaces wired in loopback.
	model := vtime.Default()
	space := mem.NewSpace(1<<24, 1<<27)
	kern := hostos.NewKernel(space, model)
	cliDev, srvDev := netsim.NewPair(model,
		netsim.Config{Name: "eth0", MAC: [6]byte{2, 0, 0, 0, 0, 1}},
		netsim.Config{Name: "eth1", MAC: [6]byte{2, 0, 0, 0, 0, 2}, Queues: 4},
	)
	clientNS, err := kern.AddNetNS("client", cliDev, netstack.IP4{10, 0, 0, 1}, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	ctrs := &vtime.Counters{}
	serverNS, err := kern.AddNetNS("server", srvDev, netstack.IP4{10, 0, 0, 2}, nil, ctrs)
	if err != nil {
		log.Fatal(err)
	}
	defer kern.Close()

	// 2. Boot RAKIS on the server namespace: the enclave stack gets its
	//    own IP; the XDP program steers that traffic to the XSKs.
	rakisIP := netstack.IP4{10, 0, 0, 3}
	rt, err := rakis.Boot(kern, serverNS, rakis.Config{
		IP:       rakisIP,
		NumXSKs:  1,
		Mode:     libos.SGX,
		Counters: ctrs,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// 3. Run an unmodified UDP echo server through RAKIS's syscall API.
	srv, err := rt.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	sfd, _ := srv.Socket(sys.UDP)
	if err := srv.Bind(sfd, 7); err != nil {
		log.Fatal(err)
	}
	const rounds = 1000
	go func() {
		buf := make([]byte, 2048)
		for i := 0; i < rounds; i++ {
			n, src, err := srv.RecvFrom(sfd, buf, true)
			if err != nil {
				return
			}
			srv.SendTo(sfd, buf[:n], src)
		}
	}()

	// 4. Drive it from the native client.
	cliProc := kern.NewProc(clientNS, nil)
	cliProc.Free = true
	cli := libos.NewProcess(cliProc, libos.Native, nil).NewThread()
	cfd, _ := cli.Socket(sys.UDP)
	payload := make([]byte, 1400)
	buf := make([]byte, 2048)
	before := ctrs.Snapshot()
	for i := 0; i < rounds; i++ {
		if _, err := cli.SendTo(cfd, payload, sys.Addr{IP: rakisIP, Port: 7}); err != nil {
			log.Fatal(err)
		}
		if _, _, err := cli.RecvFrom(cfd, buf, true); err != nil {
			log.Fatal(err)
		}
	}
	diff := ctrs.Snapshot().Sub(before)

	bytes := uint64(rounds) * uint64(len(payload)) * 2
	seconds := model.Seconds(cli.Clock().Now())
	fmt.Printf("RAKIS-SGX UDP echo: %d round trips, %.2f virtual Gbps\n",
		rounds, float64(bytes)*8/seconds/1e9)
	fmt.Printf("  enclave exits on the data path: %d (startup used %d)\n",
		diff.EnclaveExits, before.EnclaveExits)
	fmt.Printf("  MM wakeup syscalls issued outside the enclave: %d\n", diff.Wakeups)
	fmt.Printf("  ring violations: %d, UMem violations: %d (a benign host misbehaves never)\n",
		diff.RingViolations, diff.UMemViolations)
}
