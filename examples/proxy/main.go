// proxy: a UDP-to-TCP gateway inside the enclave, exercising the §4.2
// scenario the API submodule exists for — one poll spanning a RAKIS UDP
// socket (served by the in-enclave stack over XSKs) and a host TCP socket
// (served by io_uring). Datagrams arriving on UDP port 5353 are framed
// and forwarded over a TCP connection to a native upstream; TCP responses
// flow back as datagrams.
//
//	go run ./examples/proxy
package main

import (
	"fmt"
	"log"
	"time"

	"rakis/internal/experiments"
	"rakis/internal/sys"
)

func main() {
	w, err := experiments.NewWorld(experiments.Options{Env: experiments.RakisSGX})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	// Native upstream: a TCP echo service in the client namespace.
	upstream := w.ClientThread()
	lfd, _ := upstream.Socket(sys.TCP)
	upstream.Bind(lfd, 9999)
	upstream.Listen(lfd, 4)
	go func() {
		cfd, _, err := upstream.Accept(lfd, true)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := upstream.Recv(cfd, buf, true)
			if err != nil || n == 0 {
				return
			}
			upstream.Send(cfd, buf[:n])
		}
	}()

	// The proxy, inside the enclave.
	proxy, err := w.ServerThread()
	if err != nil {
		log.Fatal(err)
	}
	ufd, _ := proxy.Socket(sys.UDP)
	if err := proxy.Bind(ufd, 5353); err != nil {
		log.Fatal(err)
	}
	tfd, _ := proxy.Socket(sys.TCP)
	if err := proxy.Connect(tfd, sys.Addr{IP: sys.IP4{10, 0, 0, 1}, Port: 9999}); err != nil {
		log.Fatal(err)
	}
	go func() {
		buf := make([]byte, 4096)
		var lastSrc sys.Addr
		for {
			// One poll across both IO providers: the UDP socket lives in
			// the enclave stack, the TCP socket in the host kernel.
			fds := []sys.PollFD{
				{FD: ufd, Events: sys.PollIn},
				{FD: tfd, Events: sys.PollIn},
			}
			if _, err := proxy.Poll(fds, time.Second); err != nil {
				return
			}
			if fds[0].Revents&sys.PollIn != 0 {
				n, src, err := proxy.RecvFrom(ufd, buf, false)
				if err == nil && n > 0 {
					lastSrc = src
					proxy.Send(tfd, buf[:n])
				}
			}
			if fds[1].Revents&sys.PollIn != 0 {
				n, err := proxy.Recv(tfd, buf, false)
				if err == nil && n > 0 && lastSrc.Port != 0 {
					proxy.SendTo(ufd, buf[:n], lastSrc)
				}
			}
		}
	}()

	// A native client speaks UDP to the proxy.
	cli := w.ClientThread()
	cfd, _ := cli.Socket(sys.UDP)
	buf := make([]byte, 4096)
	const rounds = 50
	for i := 0; i < rounds; i++ {
		msg := []byte(fmt.Sprintf("datagram %02d through the enclave gateway", i))
		if _, err := cli.SendTo(cfd, msg, sys.Addr{IP: w.ServerIP, Port: 5353}); err != nil {
			log.Fatal(err)
		}
		n, _, err := cli.RecvFrom(cfd, buf, true)
		if err != nil {
			log.Fatal(err)
		}
		if string(buf[:n]) != string(msg) {
			log.Fatalf("round %d corrupted: %q", i, buf[:n])
		}
	}
	snap := w.Counters.Snapshot()
	fmt.Printf("proxied %d UDP<->TCP round trips through the enclave\n", rounds)
	fmt.Printf("  exits after startup: %d, io_uring ops: %d, wakeups: %d\n",
		snap.EnclaveExits-42, snap.IoUringOps, snap.Wakeups)
	fmt.Printf("  client virtual time: %.2f ms\n",
		w.Model.Seconds(cli.Clock().Now())*1e3)
}
