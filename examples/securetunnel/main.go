// securetunnel: the §7 "Data protection" extension as a runnable example.
// RAKIS itself (like exit-based LibOSes) does not protect IO payloads —
// applications use TLS, or, thanks to the in-enclave UDP/IP stack, a
// layer-3 tunnel. Here a WireGuard-style tunnel terminates inside the
// enclave over the XSK fast path: the host OS forwards only sealed
// datagrams and provably cannot read or forge the inner packets.
//
//	go run ./examples/securetunnel
package main

import (
	"bytes"
	"fmt"
	"log"

	"rakis/internal/experiments"
	"rakis/internal/sys"
	"rakis/internal/wgtun"
)

func main() {
	w, err := experiments.NewWorld(experiments.Options{Env: experiments.RakisSGX})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	psk := bytes.Repeat([]byte{0xA5}, wgtun.KeyBytes)

	// Enclave endpoint: respond to handshakes, echo decrypted packets.
	srv, err := w.ServerThread()
	if err != nil {
		log.Fatal(err)
	}
	sfd, _ := srv.Socket(sys.UDP)
	if err := srv.Bind(sfd, 51820); err != nil {
		log.Fatal(err)
	}
	enclave, _ := wgtun.New(psk)
	go func() {
		buf := make([]byte, 65536)
		for {
			n, src, err := srv.RecvFrom(sfd, buf, true)
			if err != nil {
				return
			}
			reply, payload, err := enclave.HandleMessage(buf[:n])
			if err != nil {
				continue // hostile datagrams are dropped
			}
			if reply != nil {
				srv.SendTo(sfd, reply, src)
			}
			if payload != nil {
				sealed, err := enclave.Seal(payload)
				if err == nil {
					srv.SendTo(sfd, sealed, src)
				}
			}
		}
	}()

	// Native peer: handshake, then tunnel traffic.
	cli := w.ClientThread()
	cfd, _ := cli.Socket(sys.UDP)
	peer, _ := wgtun.New(psk)
	dst := sys.Addr{IP: w.ServerIP, Port: 51820}

	init, _ := peer.HandshakeInit()
	cli.SendTo(cfd, init, dst)
	buf := make([]byte, 65536)
	n, _, err := cli.RecvFrom(cfd, buf, true)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := peer.HandleMessage(buf[:n]); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tunnel established through the XSK fast path")

	const rounds = 200
	var wireBytes, innerBytes int
	for i := 0; i < rounds; i++ {
		inner := []byte(fmt.Sprintf("secret packet %03d: the host sees only ciphertext", i))
		sealed, _ := peer.Seal(inner)
		wireBytes += len(sealed)
		innerBytes += len(inner)
		cli.SendTo(cfd, sealed, dst)
		n, _, err := cli.RecvFrom(cfd, buf, true)
		if err != nil {
			log.Fatal(err)
		}
		_, echoed, err := peer.HandleMessage(buf[:n])
		if err != nil || !bytes.Equal(echoed, inner) {
			log.Fatalf("round %d: %v", i, err)
		}
	}
	snap := w.Counters.Snapshot()
	fmt.Printf("%d encrypted round trips, %d inner bytes (%.1f%% overhead on the wire)\n",
		rounds, innerBytes, 100*float64(wireBytes-innerBytes)/float64(innerBytes))
	fmt.Printf("enclave exits beyond startup: %d; ring violations: %d\n",
		snap.EnclaveExits-42, snap.RingViolations)
	fmt.Printf("client virtual time: %.2f ms\n", w.Model.Seconds(cli.Clock().Now())*1e3)
}
