// kvcache: the paper's Memcached scenario as a runnable example — a
// multi-threaded UDP key-value cache served through RAKIS's XSK path on
// four NIC queues, compared against the same unmodified code under
// Gramine-SGX.
//
//	go run ./examples/kvcache
package main

import (
	"fmt"
	"log"

	"rakis/internal/experiments"
	"rakis/internal/workloads"
)

func main() {
	fmt.Println("UDP key-value cache, 4 server threads, memaslap-style load")
	fmt.Println()
	for _, env := range []experiments.Environment{
		experiments.Native, experiments.RakisSGX, experiments.GramineSGX,
	} {
		w, err := experiments.NewWorld(experiments.Options{
			Env: env, NumXSKs: 4, ServerQueues: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := workloads.Memcached(w.WorkloadEnv(), workloads.MemcachedParams{
			ServerThreads: 4,
			Ops:           3000,
		})
		if err != nil {
			log.Fatalf("%v: %v", env, err)
		}
		fmt.Printf("  %-16s %8.1f virtual kops/s   (exits: %d)\n",
			env, res.OpsPerSec/1e3, w.Counters.EnclaveExits.Load())
		w.Close()
	}
	fmt.Println("\nRAKIS serves every request without leaving the enclave;")
	fmt.Println("Gramine-SGX pays two exits (recvfrom + sendto) per request.")
}
