// filecrypt: the paper's MCrypt scenario as a runnable example — block
// encryption of a file whose reads and writes flow through io_uring
// instead of exit-paying syscalls. The ciphertext is real AES-CTR and is
// verified against a direct encryption of the same input.
//
//	go run ./examples/filecrypt
package main

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"log"

	"rakis/internal/experiments"
	"rakis/internal/workloads"
)

func main() {
	const size = 8 << 20
	input := workloads.PrepareMcryptInput(size)
	key := []byte("0123456789abcdef")

	// Reference ciphertext, computed directly.
	blk, _ := aes.NewCipher(key)
	want := make([]byte, size)
	cipher.NewCTR(blk, make([]byte, aes.BlockSize)).XORKeyStream(want, input)

	fmt.Printf("Encrypting %d MiB in 64 KiB blocks\n\n", size>>20)
	for _, env := range []experiments.Environment{
		experiments.Native, experiments.RakisSGX, experiments.GramineSGX,
	} {
		w, err := experiments.NewWorld(experiments.Options{Env: env})
		if err != nil {
			log.Fatal(err)
		}
		w.VFS().WriteFile("/data/mcrypt.in", input)
		res, err := workloads.Mcrypt(w.WorkloadEnv(), workloads.McryptParams{
			BlockSize: 65536, Key: key,
		})
		if err != nil {
			log.Fatalf("%v: %v", env, err)
		}
		got, err := w.VFS().ReadFile("/data/mcrypt.out")
		if err != nil || !bytes.Equal(got, want) {
			log.Fatalf("%v: ciphertext mismatch (err=%v)", env, err)
		}
		fmt.Printf("  %-16s %7.2f virtual ms   (exits: %d, io_uring ops: %d)  ciphertext OK\n",
			env, res.Seconds*1e3, w.Counters.EnclaveExits.Load(), w.Counters.IoUringOps.Load())
		w.Close()
	}
}
