package rakis

// Epoll support: the extension the paper's evaluation explicitly lacked
// (§6.2 compiled Redis against select because "RAKIS does not currently
// support epoll"). The API submodule already owns everything needed: an
// enclave-side registry of interest plus the armed-io_uring-poll cache
// give epoll semantics — O(ready) virtual cost per wait and no re-arming
// of quiet descriptors — without any new kernel surface and without
// enclave exits.

import (
	"errors"
	"sync"
	"time"

	"rakis/internal/telemetry"

	"rakis/internal/netstack"
	"rakis/internal/sm"
	"rakis/internal/sys"
)

// epollItem is one registered descriptor.
type epollItem struct {
	udp    *netstack.UDPSocket
	tcp    *netstack.TCPSocket
	hostFD int
	isUDP  bool
	events uint32
}

// repoll is an enclave-side epoll instance.
type repoll struct {
	mu       sync.Mutex
	interest map[int]epollItem
}

// ErrBadEpoll reports epoll ops on a non-epoll descriptor.
var ErrBadEpoll = errors.New("rakis: not an epoll descriptor")

// EpollCreate installs an enclave-side epoll instance. No host resources
// are involved: interest lives in trusted memory.
func (t *Thread) EpollCreate() (int, error) {
	t.probe.Begin(telemetry.SpanEpollCreate)
	defer t.probe.End()
	t.hook()
	ep := &repoll{interest: make(map[int]epollItem)}
	return t.rt.registerEntry(&entry{kind: kindEpoll, ep: ep}), nil
}

// EpollCtl updates interest in fd.
func (t *Thread) EpollCtl(epfd, op, fd int, events uint32) error {
	t.probe.Begin(telemetry.SpanEpollCtl)
	defer t.probe.End()
	t.hook()
	e, ok := t.rt.lookup(epfd)
	if !ok || e.kind != kindEpoll {
		return ErrBadEpoll
	}
	ep := e.ep
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if op == sys.EpollCtlDel {
		delete(ep.interest, fd)
		return nil
	}
	target, ok := t.rt.lookup(fd)
	if !ok {
		return errors.New("rakis: bad fd")
	}
	item := epollItem{events: events}
	switch target.kind {
	case kindUDP:
		item.udp = target.udp
		item.isUDP = true
	case kindTCP:
		if target.tcp == nil {
			return errors.New("rakis: epoll on unconnected TCP fd")
		}
		item.tcp = target.tcp
	case kindHost:
		item.hostFD = target.host
	default:
		return ErrBadEpoll
	}
	switch op {
	case sys.EpollCtlAdd, sys.EpollCtlMod:
		ep.interest[fd] = item
	default:
		return errors.New("rakis: bad epoll op")
	}
	return nil
}

// dropFromEpolls purges fd from every epoll interest set. Epoll
// semantics remove a closed descriptor from all sets watching it; if the
// registration survived close, the next wait would re-arm an io_uring
// poll on a descriptor the application no longer owns — reporting a
// stale PollErr event, or readiness of an unrelated descriptor once the
// host reuses the number.
func (rt *Runtime) dropFromEpolls(fd int) {
	rt.mu.Lock()
	var eps []*repoll
	for _, e := range rt.fds {
		if e.kind == kindEpoll {
			eps = append(eps, e.ep)
		}
	}
	rt.mu.Unlock()
	for _, ep := range eps {
		ep.mu.Lock()
		delete(ep.interest, fd)
		ep.mu.Unlock()
	}
}

// EpollWait reports ready descriptors via the cross-provider aggregation
// (§4.2), reusing the thread's armed-poll cache so quiet host
// descriptors stay armed between waits — the epoll advantage.
func (t *Thread) EpollWait(epfd int, events []sys.EpollEvent, timeout time.Duration) (int, error) {
	t.probe.Begin(telemetry.SpanEpollWait)
	defer t.probe.End()
	e, ok := t.rt.lookup(epfd)
	if !ok || e.kind != kindEpoll {
		return 0, ErrBadEpoll
	}
	ep := e.ep
	ep.mu.Lock()
	srcs := make([]sm.PollSource, 0, len(ep.interest))
	fds := make([]int, 0, len(ep.interest))
	for fd, item := range ep.interest {
		src := sm.PollSource{Events: item.events}
		switch {
		case item.isUDP:
			src.UDP = item.udp
		case item.tcp != nil:
			src.TCP = item.tcp
		default:
			src.HostFD = item.hostFD
		}
		srcs = append(srcs, src)
		fds = append(fds, fd)
	}
	ep.mu.Unlock()

	clk := t.lt.Clock()
	n, err := sm.PollCached(srcs, timeout, t.proxy, t.rt.cfg.Model, clk, t.pollCache)
	if err != nil {
		return 0, err
	}
	out := 0
	for i := range srcs {
		if out == len(events) {
			break
		}
		if srcs[i].Revents != 0 {
			events[out] = sys.EpollEvent{FD: fds[i], Events: srcs[i].Revents}
			out++
		}
	}
	_ = n
	return out, nil
}
