// Command rakis-trace runs one workload × environment cell with the
// telemetry subsystem armed and emits the paper-style cost breakdown:
// the per-syscall decomposition of where virtual time went (enclave
// exits vs boundary copies vs ring validation vs stack work, §6), the
// per-thread cycle ledgers, and every registry metric — including the
// Figure 2 exit counts and the NIC per-queue drop gauges.
//
// Usage:
//
//	rakis-trace [-workload iperf] [-env rakis-sgx] [-tail 20]
//	            [-json breakdown.json] [-chrome trace.json] [-csv events.csv]
//
// The run fails (nonzero exit) if the accounting invariant is violated:
// every probed thread's per-component totals must sum exactly to its
// virtual clock, and every span's components to its recorded cycles.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rakis/internal/chaos/harness"
	"rakis/internal/experiments"
	"rakis/internal/telemetry"
)

// envNames maps flag spellings to environments.
var envNames = map[string]experiments.Environment{
	"native":         experiments.Native,
	"gramine-direct": experiments.GramineDirect,
	"gramine-sgx":    experiments.GramineSGX,
	"rakis-direct":   experiments.RakisDirect,
	"rakis-sgx":      experiments.RakisSGX,
}

func main() {
	workload := flag.String("workload", "iperf", "workload to run ("+strings.Join(harness.Workloads(), ", ")+")")
	envFlag := flag.String("env", "rakis-sgx", "environment (native, gramine-direct, gramine-sgx, rakis-direct, rakis-sgx)")
	tail := flag.Int("tail", 0, "also print the last N trace events")
	jsonPath := flag.String("json", "", "write the machine-readable breakdown (rakis-breakdown/v1) to this path")
	chromePath := flag.String("chrome", "", "write a Chrome about://tracing JSON document to this path")
	csvPath := flag.String("csv", "", "write the decoded event log as CSV to this path")
	flag.Parse()

	env, ok := envNames[*envFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "rakis-trace: unknown environment %q\n", *envFlag)
		os.Exit(2)
	}

	sink := telemetry.NewSink()
	sink.Trace.Enable()
	w, err := experiments.NewWorld(experiments.Options{Env: env, Telemetry: sink})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rakis-trace: world boot:", err)
		os.Exit(1)
	}
	runErr := harness.RunWorkload(w, *workload)
	drops := w.TotalDrops()
	w.Close()
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "rakis-trace: workload:", runErr)
		os.Exit(1)
	}

	fmt.Printf("rakis-trace: %s on %s\n\n", *workload, env)
	bd := sink.Breakdown()
	fmt.Print(bd.Format(w.Model))
	if drops > 0 {
		fmt.Printf("\nNIC drops: %d\n", drops)
	}

	if *tail > 0 {
		fmt.Printf("\nlast %d trace events:\n", *tail)
		for _, e := range sink.Trace.Tail(*tail) {
			fmt.Printf("  %s\n", e)
		}
	}

	write := func(path string, f func(*os.File) error) {
		if path == "" {
			return
		}
		out, err := os.Create(path)
		if err == nil {
			if err = f(out); err == nil {
				err = out.Close()
			} else {
				out.Close()
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rakis-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
	write(*jsonPath, func(f *os.File) error { return bd.WriteJSON(f) })
	write(*chromePath, func(f *os.File) error {
		return telemetry.WriteChromeTrace(f, sink.Trace.Events(), w.Model)
	})
	write(*csvPath, func(f *os.File) error {
		return telemetry.WriteCSV(f, sink.Trace.Events())
	})

	if err := sink.CheckConservation(); err != nil {
		fmt.Fprintln(os.Stderr, "rakis-trace: ACCOUNTING VIOLATION:", err)
		os.Exit(1)
	}
	fmt.Println("\nconservation: every probed thread's components sum to its clock — ok")
}
