// Command rakis-bench regenerates the paper's evaluation figures (§6) on
// the simulated testbed: one table of series per figure, across the five
// environments.
//
// Usage:
//
//	rakis-bench [-fig 4a|4b|4c|5a|5b|5c|2|batch|zerocopy|adaptive|shards|tcp|all] [-scale 0.25] [-json BENCH_figs.json]
//
// -fig also accepts a comma-separated list (e.g. -fig 2,batch).
//
// Scale stretches or shrinks workload volumes; the shapes (who wins, by
// what factor) are stable across scales. See EXPERIMENTS.md for recorded
// paper-vs-measured comparisons. With -json, every measured row is also
// written to the given path in the stable rakis-bench/v1 layout
// (EXPERIMENTS.md documents the schema).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rakis/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figures to regenerate (comma-separated): 2, 4a, 4b, 4c, 5a, 5b, 5c, batch, zerocopy, adaptive, shards, tcp, or all")
	scale := flag.Float64("scale", 0.25, "workload scale factor (1.0 = figure-sized)")
	jsonPath := flag.String("json", "", "also write measured rows as rakis-bench/v1 JSON to this path")
	flag.Parse()

	type figure struct {
		id    string
		title string
		run   func(experiments.Scale) ([]experiments.Row, error)
	}
	figures := []figure{
		{"2", "Figure 2: enclave exits (log-scale in the paper)", experiments.Fig2Exits},
		{"4a", "Figure 4(a): iperf3 UDP throughput vs packet size", experiments.Fig4aIperf},
		{"4b", "Figure 4(b): Curl QUIC download duration vs file size", experiments.Fig4bCurl},
		{"4c", "Figure 4(c): Memcached throughput vs server threads", experiments.Fig4cMemcached},
		{"5a", "Figure 5(a): fstime write throughput vs block size", experiments.Fig5aFstime},
		{"5b", "Figure 5(b): Redis throughput normalized to Native", experiments.Fig5bRedis},
		{"5c", "Figure 5(c): MCrypt encryption time vs read block size", experiments.Fig5cMcrypt},
		{"batch", "Batched fast path: enclave exits per datagram vs vector width", experiments.FigBatch},
		{"zerocopy", "Zero-copy datapath: copy cycles per datagram, copying vs in-place RX", experiments.FigZerocopy},
		{"adaptive", "Self-tuning runtime: latency-vs-cycles frontier, adaptive vs static", experiments.FigAdaptive},
		{"shards", "Sharded scale-out: throughput and exits/op vs XSK shard count, with round-robin TX ablation", experiments.FigShards},
		{"tcp", "In-enclave TCP: Redis-style throughput and exits/op, io_uring-proxied vs XSK TCP", experiments.FigTCP},
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(id)] = true
	}
	ran := 0
	var doc experiments.BenchDoc
	for _, f := range figures {
		if !want["all"] && !want[f.id] {
			continue
		}
		ran++
		rows, err := f.run(experiments.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rakis-bench: %s: %v\n", f.id, err)
			os.Exit(1)
		}
		experiments.PrintRows(os.Stdout, f.title, rows)
		doc.AddFigure(f.id, rows)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "rakis-bench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if *jsonPath != "" {
		out, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rakis-bench:", err)
			os.Exit(1)
		}
		if err := doc.WriteJSON(out); err == nil {
			err = out.Close()
		} else {
			out.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rakis-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d rows to %s\n", len(doc.Rows), *jsonPath)
	}
}
