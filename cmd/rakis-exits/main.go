// Command rakis-exits regenerates Figure 2: the enclave-exit counts of a
// HelloWorld baseline and an iperf3 network test under Gramine-SGX and
// RAKIS-SGX. The paper plots these on a log scale; RAKIS eliminates the
// per-IO exits, leaving only startup and control-plane exits.
package main

import (
	"flag"
	"fmt"
	"os"

	"rakis/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.25, "iperf3 volume scale factor")
	flag.Parse()

	rows, err := experiments.Fig2Exits(experiments.Scale(*scale))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rakis-exits:", err)
		os.Exit(1)
	}
	fmt.Println("Figure 2 — enclave exits per run")
	fmt.Println()
	for _, r := range rows {
		bar := ""
		for n := float64(1); n < r.Value; n *= 10 {
			bar += "#"
		}
		fmt.Printf("  %-16s %-12s %10.0f  %s\n", r.Env, r.Param, r.Value, bar)
	}
	fmt.Println("\n(log-scale bars: one # per decade)")
}
