// Command rakis-fuzz is the Testing Module's fuzzing harness binary
// (§5.2): it initializes the trimmed in-enclave UDP/IP stack, reads
// frames from stdin (one length-prefixed record per frame, or the whole
// input as a single frame with -single), feeds them to the stack, and
// emulates user actions by echoing every datagram that reaches the bound
// socket — exactly the harness shape the paper drives with AFL++.
//
// For coverage-guided fuzzing use the Go-native fuzz targets instead:
//
//	go test -fuzz=FuzzStackInput ./internal/netstack/
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"

	"rakis/internal/netstack"
	"rakis/internal/vtime"
)

// sinkDevice swallows the stack's replies.
type sinkDevice struct{}

func (sinkDevice) SendFrame(data []byte, clk *vtime.Clock) (uint64, error) { return clk.Now(), nil }
func (sinkDevice) MAC() [6]byte                                            { return [6]byte{2, 0, 0, 0, 0, 9} }
func (sinkDevice) MTU() int                                                { return 1500 }

func main() {
	single := flag.Bool("single", false, "treat all of stdin as one frame")
	flag.Parse()

	stack, err := netstack.New(netstack.Config{
		Name: "fuzz",
		Dev:  sinkDevice{},
		IP:   netstack.IP4{10, 0, 0, 9},
		// Trimmed configuration: UDP/IP only, like the enclave build.
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rakis-fuzz:", err)
		os.Exit(1)
	}
	sock, err := stack.UDPBind(4242)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rakis-fuzz:", err)
		os.Exit(1)
	}

	inject := func(frame []byte) {
		var clk vtime.Clock
		stack.Input(frame, &clk)
		// Emulate the user: echo whatever arrived, exercising the send
		// routines too (§5.2 "mimicking user actions").
		for {
			d, err := sock.RecvFrom(&clk, false)
			if err != nil {
				break
			}
			sock.SendTo(d.Payload, d.Src, &clk)
		}
	}

	in := bufio.NewReader(os.Stdin)
	frames := 0
	if *single {
		data, err := io.ReadAll(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rakis-fuzz:", err)
			os.Exit(1)
		}
		inject(data)
		frames = 1
	} else {
		for {
			var n uint32
			if err := binary.Read(in, binary.LittleEndian, &n); err != nil {
				break
			}
			if n > 1<<16 {
				break
			}
			frame := make([]byte, n)
			if _, err := io.ReadFull(in, frame); err != nil {
				break
			}
			inject(frame)
			frames++
		}
	}
	fmt.Printf("rakis-fuzz: survived %d frame(s)\n", frames)
}
