// Command rakis-chaos runs the hostile-host fault-injection matrix:
// every paper workload (§6) against a RAKIS world whose untrusted side
// is armed with a chaos profile (internal/chaos). Each cell must uphold
// the Table 2 discipline — no panic, no trusted-memory access by
// host-role code, and (for completion profiles) a correct run despite
// the faults.
//
// A failing cell prints the seed that reproduces its fault stream:
//
//	rakis-chaos -profile ring -seed 0x1234
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rakis/internal/chaos"
	"rakis/internal/chaos/harness"
)

func main() {
	profileFlag := flag.String("profile", "all", "profile to run (off, smoke, ring, wakeups, cqe, mmdeath, net, faketel, hostile, all)")
	workloadFlag := flag.String("workload", "all", "workload to run ("+strings.Join(harness.Workloads(), ", ")+", all)")
	seed := flag.Uint64("seed", 0x7261_6b69_73, "base seed; per-cell streams are derived from it")
	flag.Parse()

	var profiles []chaos.Profile
	if *profileFlag == "all" {
		profiles = chaos.ProfileList()
	} else {
		p, ok := chaos.Profiles()[*profileFlag]
		if !ok {
			fmt.Fprintf(os.Stderr, "rakis-chaos: unknown profile %q\n", *profileFlag)
			os.Exit(2)
		}
		profiles = []chaos.Profile{p}
	}
	workloads := harness.Workloads()
	if *workloadFlag != "all" {
		found := false
		for _, w := range workloads {
			if w == *workloadFlag {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "rakis-chaos: unknown workload %q\n", *workloadFlag)
			os.Exit(2)
		}
		workloads = []string{*workloadFlag}
	}

	failed := 0
	for _, p := range profiles {
		for _, wl := range workloads {
			if skip, why := harness.Excluded(p, wl); skip {
				fmt.Printf("%-8s %-10s skipped: %s\n", p.Name, wl, why)
				continue
			}
			res := harness.RunCell(p, wl, harness.CellSeed(*seed, p.Name, wl))
			fmt.Println(res)
			if res.Failed(p.RequireCompletion) {
				failed++
				// The final trace window: what the run was doing when it
				// died, next to the seed that replays it.
				if len(res.TraceTail) > 0 {
					fmt.Printf("  last %d trace events:\n", len(res.TraceTail))
					for _, line := range res.TraceTail {
						fmt.Printf("    %s\n", line)
					}
				}
			}
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d cell(s) FAILED (replay: rakis-chaos -seed %#x)\n", failed, *seed)
		os.Exit(1)
	}
	fmt.Println("\nall cells passed")
}
