// Command rakis-lint is the trustlint multichecker: it runs the static
// trust-boundary analyzers of internal/analysis (taintflow, doublefetch,
// rolecheck, boundarycopy, annotations) over the requested packages and
// exits non-zero if any finding survives.
//
// Usage:
//
//	go run ./cmd/rakis-lint [-list] [-json] [packages]
//
// Packages default to ./... and accept the usual go list patterns. The
// module is always loaded whole (cross-package annotations need it);
// the patterns select which packages are reported on.
//
// With -json, findings are emitted on stdout as a JSON array of
// objects with the fields file, line, col, analyzer, and message (an
// empty array when clean), and the human-readable rendering is
// suppressed. The summary line always goes to stderr.
//
// Exit status is a contract for CI and editor integrations:
//
//	0  clean: the analyzers ran and reported nothing
//	1  findings: at least one diagnostic was reported
//	2  the analysis itself failed (load, parse, or type error)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"rakis/internal/analysis"
)

// jsonDiag is the machine-readable rendering of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rakis-lint [-list] [-json] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Statically enforces the RAKIS trust-boundary discipline.\n")
		fmt.Fprintf(os.Stderr, "Exits 0 when clean, 1 on findings, 2 on analysis failure.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	world, err := analysis.LoadModule(cwd)
	if err != nil {
		fatal(err)
	}
	targets, err := analysis.ResolvePatterns(world, cwd, patterns)
	if err != nil {
		fatal(err)
	}

	diags := analysis.Run(world, targets, analysis.All())
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			pos := world.Fset.Position(d.Pos)
			out = append(out, jsonDiag{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(analysis.Format(world.Fset, d))
		}
	}
	if len(diags) > 0 {
		byPass := map[string]int{}
		for _, d := range diags {
			byPass[d.Analyzer]++
		}
		var names []string
		for n := range byPass {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "rakis-lint: %d finding(s):", len(diags))
		for _, n := range names {
			fmt.Fprintf(os.Stderr, " %s=%d", n, byPass[n])
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
}

// fatal reports an analysis failure (exit 2), distinct from findings
// (exit 1) so CI can tell "the code is dirty" from "the tool broke".
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rakis-lint:", err)
	os.Exit(2)
}
