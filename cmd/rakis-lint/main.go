// Command rakis-lint is the trustlint multichecker: it runs the static
// trust-boundary analyzers of internal/analysis (taintflow, rolecheck,
// boundarycopy) over the requested packages and exits non-zero if any
// finding survives.
//
// Usage:
//
//	go run ./cmd/rakis-lint [-list] [packages]
//
// Packages default to ./... and accept the usual go list patterns. The
// module is always loaded whole (cross-package annotations need it);
// the patterns select which packages are reported on.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"rakis/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rakis-lint [-list] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Statically enforces the RAKIS trust-boundary discipline.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	world, err := analysis.LoadModule(cwd)
	if err != nil {
		fatal(err)
	}
	targets, err := analysis.ResolvePatterns(world, cwd, patterns)
	if err != nil {
		fatal(err)
	}

	diags := analysis.Run(world, targets, analysis.All())
	for _, d := range diags {
		fmt.Println(analysis.Format(world.Fset, d))
	}
	if len(diags) > 0 {
		byPass := map[string]int{}
		for _, d := range diags {
			byPass[d.Analyzer]++
		}
		var names []string
		for n := range byPass {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "rakis-lint: %d finding(s):", len(diags))
		for _, n := range names {
			fmt.Fprintf(os.Stderr, " %s=%d", n, byPass[n])
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rakis-lint:", err)
	os.Exit(1)
}
