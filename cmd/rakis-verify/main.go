// Command rakis-verify is the Testing Module's verification binary
// (§5.1): it model-checks the FastPath Module's certified rings, the
// UMem frame allocator, and the io_uring completion validator against
// exhaustive adversary-value classes, asserting the paper's invariant
//
//	∀R : {Pt, Ct, St},  0 ≤ (Pt − Ct) ≤ St
//
// and the untrusted-memory-access constraints after every operation.
package main

import (
	"flag"
	"fmt"
	"os"

	"rakis/internal/tm"
)

func main() {
	depth := flag.Int("depth", 4, "exploration depth (operation-sequence length)")
	flag.Parse()

	fmt.Println("RAKIS Testing Module — FastPath Module verification")
	fmt.Println()
	failed := 0
	for _, rep := range tm.VerifyAll(*depth) {
		fmt.Println(" ", rep.String())
		if !rep.OK() {
			failed++
			for i, v := range rep.Violations {
				if i == 5 {
					fmt.Printf("    ... %d more\n", len(rep.Violations)-5)
					break
				}
				fmt.Println("   !", v)
			}
		}
	}
	fmt.Println()
	if failed > 0 {
		fmt.Printf("FAILED: %d model(s) reported violations\n", failed)
		os.Exit(1)
	}
	fmt.Println("All models verified: no reachable state violates the constraints.")
}
