package rakis_test

import (
	"runtime/debug"
	"testing"
)

// TestRaceConstantMatchesBuildMode cross-checks the build-tag-selected
// raceDetectorEnabled constant against the toolchain's own record of the
// build. The two race_*.go files gate adversarial tests (which are
// deliberate data races) and would silently mis-gate them if the build
// tags ever drifted from the actual instrumentation — e.g. a vendored
// copy compiled with a stale tag set. ReadBuildInfo reports the -race
// flag the binary was really built with, independent of tags.
func TestRaceConstantMatchesBuildMode(t *testing.T) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		t.Skip("binary carries no build info")
	}
	built := false
	for _, s := range bi.Settings {
		if s.Key == "-race" {
			built = s.Value == "true"
		}
	}
	if built != raceDetectorEnabled {
		t.Fatalf("raceDetectorEnabled = %v, but build info says -race=%v",
			raceDetectorEnabled, built)
	}
}
