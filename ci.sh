#!/bin/sh
# ci.sh — the full verification gate for this repository.
#
# Every step must pass before a change lands:
#
#   1. go vet          — toolchain static checks
#   2. go build ./...  — everything compiles
#   3. go test ./...   — unit + integration + property tests
#   4. go test -race   — FM/ring protocol under the race detector (see
#                        race_on_test.go for why this pass is load-bearing)
#   5. rakis-lint      — the trust-boundary analyzers (taintflow,
#                        rolecheck, boundarycopy; see DESIGN.md)
set -eu
cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/..."
go test -race ./internal/...

echo "==> rakis-lint ./..."
go run ./cmd/rakis-lint ./...

echo "ci: all checks passed"
