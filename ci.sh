#!/bin/sh
# ci.sh — the full verification gate for this repository.
#
# Every step must pass before a change lands:
#
#   1. go vet          — toolchain static checks
#   2. go build ./...  — everything compiles
#   3. go test ./...   — unit + integration + property tests
#   4. go test -race   — FM/ring protocol under the race detector (see
#                        race_on_test.go for why this pass is load-bearing),
#                        shuffled so test-order coupling cannot hide
#   5. fuzz smoke      — 30 s over the committed netstack seed corpus
#                        (internal/netstack/testdata/fuzz), the §5.2-style
#                        hostile-frame campaign
#   6. chaos smoke     — rakis-chaos -profile smoke: every workload under
#                        fault injection (see DESIGN.md, "Chaos testing")
#   7. rakis-lint      — the trust-boundary analyzers (taintflow,
#                        rolecheck, boundarycopy; see DESIGN.md)
set -eu
cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race -shuffle=on ./internal/..."
go test -race -shuffle=on ./internal/...

echo "==> go test -fuzz=FuzzStackInput -fuzztime=30s ./internal/netstack"
go test -run='^$' -fuzz='^FuzzStackInput$' -fuzztime=30s ./internal/netstack

echo "==> rakis-chaos -profile smoke"
go run ./cmd/rakis-chaos -profile smoke

echo "==> rakis-lint ./..."
go run ./cmd/rakis-lint ./...

echo "ci: all checks passed"
