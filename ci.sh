#!/bin/sh
# ci.sh — the full verification gate for this repository.
#
# Every step must pass before a change lands. The cheap static gates run
# first so a trust-boundary violation fails the build in seconds, before
# any long test pass:
#
#   1. go build ./...  — everything compiles
#   2. rakis-lint      — the trust-boundary analyzers (taintflow,
#                        doublefetch, rolecheck, boundarycopy,
#                        annotations; see DESIGN.md). Exit 1 means
#                        findings, exit 2 means the tool itself failed.
#   3. analysis tests  — fixture-freshness gate: the analyzers still
#                        fire on their testdata fixtures and stay clean
#                        on the production tree
#   4. go vet          — toolchain static checks
#   5. go test ./...   — unit + integration + property tests
#   6. go test -race   — FM/ring protocol under the race detector (see
#                        race_on_test.go for why this pass is load-bearing),
#                        shuffled so test-order coupling cannot hide
#   7. fuzz smoke      — 30 s over the committed netstack seed corpus
#                        (internal/netstack/testdata/fuzz), the §5.2-style
#                        hostile-frame campaign, plus 30 s aimed at the
#                        certify-in-place view parser (FuzzInputView) and
#                        30 s at the TCP segment ingest (FuzzInputTCP,
#                        seeded with the hostile-handshake corpus)
#   8. chaos smoke     — rakis-chaos -profile smoke: every workload under
#                        fault injection (see DESIGN.md, "Chaos testing")
#   9. trace smoke     — rakis-trace: one instrumented cell per trust
#                        model; fails on any accounting violation (the
#                        telemetry conservation invariant, see DESIGN.md,
#                        "Telemetry")
#  10. batched path    — the batched-fast-path differential suite and the
#                        exit-amortization regression guard under -race:
#                        batched and scalar I/O must differ in cost only
#                        (see DESIGN.md, "Batched fast path")
#  11. zero-copy path  — the zero-copy differential suite under -race:
#                        the in-place RX/splice datapath and the legacy
#                        copying path must agree on every observable
#                        (streams, refusals, packet accounting); plus the
#                        no-waiver gate — the RX-path packages carry no
#                        //rakis:singleread-ok escape hatches, so the
#                        doublefetch analyzer's pass in step 2 covers
#                        every in-place reader (see DESIGN.md,
#                        "Zero-copy datapath")
#  12. adaptive path   — the self-tuning runtime under -race: the tuner
#                        convergence suite plus the adaptive smoke (the
#                        tuner steps under load, never leaves its safety
#                        envelope, and matches the narrow static's
#                        exits/op floor); then the faketel chaos profile —
#                        a hostile host steering the tuner's inputs must
#                        not push it out of the envelope or flap the mode
#                        (see DESIGN.md, "Self-tuning runtime")
#  13. sharded path    — the sharded data path: the demux suite under
#                        -race (widths 1..64, rebind, cross-shard port
#                        collision, bind/close/recv churn), the
#                        flow-affinity differential (affine TX vs the
#                        round-robin ablation must be stream-identical),
#                        and the shardq quarantine scenario — a host
#                        denying one queue of a four-shard world must
#                        confine refusals to that shard while every
#                        healthy shard's flows complete (see DESIGN.md,
#                        "Sharded data path")
#  14. xsk-tcp path    — the in-enclave TCP battery: the TCP shard suite
#                        under -race (concurrent accept/close/rebind at
#                        widths 1..64, cross-shard port collisions,
#                        retransmit-vs-close races, hostile-scribble
#                        refusal), the proxied-vs-XSK differential
#                        (byte-identical streams and exact refusal/ring
#                        accounting at widths 1..64, incl. completion-safe
#                        chaos profiles), the SYN-flood gate under -race
#                        (stateless cookies, bounded memory, 100% healthy
#                        delivery), and the figure gate (zero steady-state
#                        exits at ≥1.5x proxied throughput; see DESIGN.md,
#                        "In-enclave TCP")
#  15. bench JSON      — rakis-bench -json: the Figure 2 rows plus the
#                        batched-vs-scalar, zero-copy, adaptive, shards,
#                        and tcp rows in the stable rakis-bench/v1 layout
#                        (BENCH_figs.json)
set -eu
cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> rakis-lint ./..."
go run ./cmd/rakis-lint ./...

echo "==> go test ./internal/analysis/... (fixture freshness)"
go test ./internal/analysis/...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race -shuffle=on ./internal/..."
go test -race -shuffle=on ./internal/...

echo "==> go test -fuzz=FuzzStackInput -fuzztime=30s ./internal/netstack"
go test -run='^$' -fuzz='^FuzzStackInput$' -fuzztime=30s ./internal/netstack

echo "==> go test -fuzz=FuzzInputView -fuzztime=30s ./internal/netstack"
go test -run='^$' -fuzz='^FuzzInputView$' -fuzztime=30s ./internal/netstack

# -fuzzminimizetime is capped: the default burns 60 s minimizing every
# new interesting input, which can eat the whole fuzz budget.
echo "==> go test -fuzz=FuzzInputTCP -fuzztime=30s ./internal/netstack"
go test -run='^$' -fuzz='^FuzzInputTCP$' -fuzztime=30s -fuzzminimizetime=10x ./internal/netstack

echo "==> rakis-chaos -profile smoke"
go run ./cmd/rakis-chaos -profile smoke

echo "==> rakis-trace smoke (conservation gate)"
go run ./cmd/rakis-trace -workload iperf -env rakis-sgx > /dev/null
go run ./cmd/rakis-trace -workload fstime -env gramine-sgx > /dev/null

echo "==> batched fast path: differential + exit-amortization guard (-race)"
go test -race -run 'TestBatchDifferential|TestBatchExitAmortization' ./internal/experiments/

echo "==> zero-copy path: differential suite (-race) + no-waiver gate"
go test -race -run 'TestZerocopyDifferential|TestZerocopyProxySplice' ./internal/experiments/
if grep -rn 'rakis:singleread-ok' --include='*.go' \
    internal/mem internal/umem internal/xsk internal/netstack internal/fm internal/sm; then
	echo "ci: unexpected //rakis:singleread-ok waiver on the RX path" >&2
	exit 1
fi

echo "==> self-tuning runtime: tuner convergence + adaptive smoke (-race)"
go test -race ./internal/tuner/
go test -race -run 'TestAdaptiveSmoke' ./internal/experiments/

echo "==> rakis-chaos -profile faketel (tuner safety under a hostile host)"
go run ./cmd/rakis-chaos -profile faketel

echo "==> sharded data path: demux (-race) + affinity differential + quarantine"
go test -race -run 'TestShard' ./internal/netstack/
go test -race -run 'TestShardAffinityDifferential' ./internal/experiments/
go test -run 'TestShardQuarantine' ./internal/chaos/harness/

echo "==> in-enclave TCP: shard suite (-race) + differential + synflood gate (-race) + figure gate"
go test -race -run 'TestTCPShard|TestTCPViewScribble' ./internal/netstack/
go test -run 'TestTCPDifferential' ./internal/experiments/
go test -race -run 'TestSynFlood' ./internal/chaos/harness/
go test -run 'TestTCPFigureGate' ./internal/experiments/

echo "==> rakis-bench -fig 2,batch,zerocopy,adaptive,shards,tcp -json BENCH_figs.json"
go run ./cmd/rakis-bench -fig 2,batch,zerocopy,adaptive,shards,tcp -scale 0.05 -json BENCH_figs.json > /dev/null
test -s BENCH_figs.json
grep -q '"figure": "batch"' BENCH_figs.json
grep -q '"figure": "zerocopy"' BENCH_figs.json
grep -q '"figure": "adaptive"' BENCH_figs.json
grep -q '"figure": "shards"' BENCH_figs.json
grep -q '"figure": "tcp"' BENCH_figs.json

echo "ci: all checks passed"
